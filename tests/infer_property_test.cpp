// Property tests of the approximate-inference engine: results must be
// invariant to batch partitioning, site numbering must be stable, and
// precision modes must behave sanely under composition.
#include <gtest/gtest.h>

#include "approx/linear_lut.h"
#include "eval/pipeline.h"
#include "numerics/math.h"

namespace nnlut::transformer {
namespace {

ModelConfig tiny() {
  ModelConfig c = ModelConfig::roberta_like();
  c.vocab = 32;
  c.hidden = 16;
  c.layers = 2;
  c.heads = 2;
  c.ffn = 32;
  c.max_seq = 12;
  return c;
}

BatchInput slice(const BatchInput& in, std::size_t b0, std::size_t count) {
  BatchInput out;
  out.batch = count;
  out.seq = in.seq;
  out.token_ids.assign(in.token_ids.begin() + static_cast<long>(b0 * in.seq),
                       in.token_ids.begin() +
                           static_cast<long>((b0 + count) * in.seq));
  out.type_ids.assign(in.type_ids.begin() + static_cast<long>(b0 * in.seq),
                      in.type_ids.begin() +
                          static_cast<long>((b0 + count) * in.seq));
  return out;
}

BatchInput random_batch(const ModelConfig& cfg, std::size_t batch,
                        std::size_t seq, Rng& rng) {
  BatchInput in;
  in.batch = batch;
  in.seq = seq;
  in.token_ids.resize(batch * seq);
  in.type_ids.assign(batch * seq, 0);
  for (int& t : in.token_ids)
    t = rng.uniform_int(0, static_cast<int>(cfg.vocab) - 1);
  return in;
}

class BatchInvariance : public ::testing::TestWithParam<int> {};

TEST_P(BatchInvariance, LogitsIndependentOfBatchSplit) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  TaskModel m(tiny(), HeadKind::kClassify, 2, rng);
  const BatchInput full = random_batch(m.config(), 6, 8, rng);

  ExactNonlinearities exact(m.config().act);
  InferenceModel infer(m, exact);
  const Tensor all = infer.logits(full);

  // Evaluate per-example and compare.
  for (std::size_t b = 0; b < 6; ++b) {
    const BatchInput one = slice(full, b, 1);
    const Tensor lone = infer.logits(one);
    for (std::size_t j = 0; j < lone.dim(1); ++j)
      EXPECT_NEAR(lone.at(0, j), all.at(b, j), 1e-4f) << b << "," << j;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchInvariance, ::testing::Values(1, 2, 3));

TEST(InferenceSites, EmbeddingNormSiteFollowsLayerCount) {
  Rng rng(4);
  TaskModel m(tiny(), HeadKind::kClassify, 2, rng);
  ExactNonlinearities exact(m.config().act);
  InferenceModel infer(m, exact);
  EXPECT_EQ(infer.embedding_norm_site(), 4);  // 2 layers -> sites 0..3, emb=4
}

TEST(InferenceSites, CaptureSeesAllLayerNormSites) {
  Rng rng(5);
  TaskModel m(tiny(), HeadKind::kClassify, 2, rng);
  const BatchInput in = random_batch(m.config(), 2, 8, rng);

  LutSet luts{fit_linear_lut(gelu_exact, kGeluRange, 32),
              fit_linear_lut(exp_exact, {-16.0f, 0.0f}, 32),
              fit_fixed_breakpoint_lut(reciprocal_exact, {1.0f, 64.0f}, 32,
                                       BreakpointMode::kExponential),
              fit_fixed_breakpoint_lut(rsqrt_exact, kRsqrtRange, 32,
                                       BreakpointMode::kExponential)};
  LutNonlinearities::Options opt;
  opt.select = ApproxSelection::all();
  auto backend = make_lut_backend(luts, LutPrecision::kFp32, opt);
  backend->enable_rsqrt_capture();
  InferenceModel infer(m, *backend);
  (void)infer.encode(in);

  // 2 layers x 2 norms + embedding norm = 5 sites, each capturing one value
  // per row (batch*seq = 16 rows).
  for (int site = 0; site < 5; ++site)
    EXPECT_EQ(backend->captured_rsqrt_inputs(site).size(), 16u) << site;
}

TEST(PrecisionModes, Fp16WeightsAreRepresentable) {
  Rng rng(6);
  TaskModel m(tiny(), HeadKind::kClassify, 2, rng);
  ExactNonlinearities exact(m.config().act);
  InferenceModel infer(m, exact, MatmulMode::kFp16);
  const BatchInput in = random_batch(m.config(), 1, 8, rng);
  const Tensor logits = infer.logits(in);
  for (float v : logits.flat()) EXPECT_TRUE(std::isfinite(v));
}

TEST(PrecisionModes, Int8IsDeterministic) {
  Rng rng(7);
  TaskModel m(tiny(), HeadKind::kClassify, 2, rng);
  ExactNonlinearities exact(m.config().act);
  InferenceModel a(m, exact, MatmulMode::kInt8);
  InferenceModel b(m, exact, MatmulMode::kInt8);
  const BatchInput in = random_batch(m.config(), 3, 8, rng);
  const Tensor la = a.logits(in);
  const Tensor lb = b.logits(in);
  for (std::size_t i = 0; i < la.size(); ++i) EXPECT_EQ(la[i], lb[i]);
}

TEST(NoNormModels, HaveNoRsqrtCaptureSites) {
  Rng rng(8);
  ModelConfig cfg = tiny();
  cfg.norm = NormKind::kNoNorm;
  cfg.act = ActKind::kRelu;
  TaskModel m(cfg, HeadKind::kClassify, 2, rng);

  LutSet luts{fit_linear_lut(gelu_exact, kGeluRange, 32),
              fit_linear_lut(exp_exact, {-16.0f, 0.0f}, 32),
              fit_fixed_breakpoint_lut(reciprocal_exact, {1.0f, 64.0f}, 32,
                                       BreakpointMode::kExponential),
              fit_fixed_breakpoint_lut(rsqrt_exact, kRsqrtRange, 32,
                                       BreakpointMode::kExponential)};
  LutNonlinearities::Options opt;
  opt.select = ApproxSelection::all();
  opt.act = cfg.act;
  auto backend = make_lut_backend(luts, LutPrecision::kFp32, opt);
  backend->enable_rsqrt_capture();
  InferenceModel infer(m, *backend);
  const BatchInput in = random_batch(cfg, 2, 8, rng);
  (void)infer.encode(in);
  for (int site = 0; site < 5; ++site)
    EXPECT_TRUE(backend->captured_rsqrt_inputs(site).empty()) << site;
}

}  // namespace
}  // namespace nnlut::transformer
