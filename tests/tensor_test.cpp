#include <gtest/gtest.h>

#include "numerics/rng.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace nnlut {
namespace {

Tensor random_tensor(std::initializer_list<std::size_t> shape, Rng& rng) {
  Tensor t(shape);
  for (float& v : t.flat()) v = rng.uniform(-1.0f, 1.0f);
  return t;
}

// Naive reference matmul for cross-checking the optimized kernels.
Tensor ref_matmul(const Tensor& a, const Tensor& b) {
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      float acc = 0;
      for (std::size_t kk = 0; kk < k; ++kk) acc += a.at(i, kk) * b.at(kk, j);
      c.at(i, j) = acc;
    }
  return c;
}

TEST(Tensor, ZeroInitialized) {
  Tensor t({2, 3});
  EXPECT_EQ(t.size(), 6u);
  for (float v : t.flat()) EXPECT_EQ(v, 0.0f);
}

TEST(Tensor, FillAndAccess) {
  Tensor t({2, 2});
  t.at(0, 1) = 5.0f;
  EXPECT_EQ(t.at(0, 1), 5.0f);
  EXPECT_EQ(t[1], 5.0f);  // row-major layout
}

TEST(Tensor, RowView) {
  Tensor t({2, 3});
  t.at(1, 0) = 7.0f;
  auto r = t.row(1);
  EXPECT_EQ(r.size(), 3u);
  EXPECT_EQ(r[0], 7.0f);
  r[2] = 9.0f;
  EXPECT_EQ(t.at(1, 2), 9.0f);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 3});
  for (std::size_t i = 0; i < 6; ++i) t[i] = static_cast<float>(i);
  Tensor r = t.reshaped({3, 2});
  EXPECT_EQ(r.dim(0), 3u);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_EQ(r[i], static_cast<float>(i));
}

TEST(Tensor, ThreeDAccessor) {
  Tensor t({2, 3, 4});
  t.at(1, 2, 3) = 42.0f;
  EXPECT_EQ(t[(1 * 3 + 2) * 4 + 3], 42.0f);
}

TEST(Tensor, ShapeString) {
  Tensor t({4, 5});
  EXPECT_EQ(t.shape_string(), "[4, 5]");
}

TEST(Ops, MatmulMatchesNaive) {
  Rng rng(3);
  const Tensor a = random_tensor({7, 5}, rng);
  const Tensor b = random_tensor({5, 9}, rng);
  Tensor c({7, 9});
  matmul(a, b, c);
  const Tensor expect = ref_matmul(a, b);
  for (std::size_t i = 0; i < c.size(); ++i)
    EXPECT_NEAR(c[i], expect[i], 1e-5f);
}

TEST(Ops, MatmulBtMatchesNaive) {
  Rng rng(4);
  const Tensor a = random_tensor({6, 5}, rng);
  const Tensor bt = random_tensor({8, 5}, rng);  // b = bt^T : (5, 8)
  Tensor c({6, 8});
  matmul_bt(a, bt, c);

  Tensor b({5, 8});
  for (std::size_t i = 0; i < 8; ++i)
    for (std::size_t j = 0; j < 5; ++j) b.at(j, i) = bt.at(i, j);
  const Tensor expect = ref_matmul(a, b);
  for (std::size_t i = 0; i < c.size(); ++i)
    EXPECT_NEAR(c[i], expect[i], 1e-5f);
}

TEST(Ops, MatmulAtMatchesNaive) {
  Rng rng(5);
  const Tensor at = random_tensor({5, 6}, rng);  // a = at^T : (6, 5)
  const Tensor b = random_tensor({5, 7}, rng);
  Tensor c({6, 7});
  matmul_at(at, b, c);

  Tensor a({6, 5});
  for (std::size_t i = 0; i < 5; ++i)
    for (std::size_t j = 0; j < 6; ++j) a.at(j, i) = at.at(i, j);
  const Tensor expect = ref_matmul(a, b);
  for (std::size_t i = 0; i < c.size(); ++i)
    EXPECT_NEAR(c[i], expect[i], 1e-5f);
}

TEST(Ops, MatmulAtAccumulates) {
  Rng rng(6);
  const Tensor at = random_tensor({3, 4}, rng);
  const Tensor b = random_tensor({3, 2}, rng);
  Tensor c = Tensor::full({4, 2}, 1.0f);
  Tensor base({4, 2});
  matmul_at(at, b, base);
  matmul_at_accumulate(at, b, c);
  for (std::size_t i = 0; i < c.size(); ++i)
    EXPECT_NEAR(c[i], base[i] + 1.0f, 1e-5f);
}

TEST(Ops, AddRowBias) {
  Tensor y({2, 3});
  const std::vector<float> bias{1.0f, 2.0f, 3.0f};
  add_row_bias(y, bias);
  EXPECT_EQ(y.at(0, 0), 1.0f);
  EXPECT_EQ(y.at(1, 2), 3.0f);
}

TEST(Ops, ColSumAccumulate) {
  Tensor x({2, 2});
  x.at(0, 0) = 1;
  x.at(0, 1) = 2;
  x.at(1, 0) = 3;
  x.at(1, 1) = 4;
  std::vector<float> out{10.0f, 10.0f};
  col_sum_accumulate(x, out);
  EXPECT_EQ(out[0], 14.0f);
  EXPECT_EQ(out[1], 16.0f);
}

TEST(Ops, AddAndScaleInplace) {
  Tensor y = Tensor::full({2, 2}, 2.0f);
  Tensor x = Tensor::full({2, 2}, 3.0f);
  add_inplace(y, x);
  scale_inplace(y, 0.5f);
  for (float v : y.flat()) EXPECT_EQ(v, 2.5f);
}

TEST(Ops, AbsMax) {
  Tensor t({3});
  t[0] = -7.0f;
  t[1] = 2.0f;
  t[2] = 5.0f;
  EXPECT_EQ(abs_max(t), 7.0f);
}

TEST(Ops, ApplyElementwise) {
  Tensor t = Tensor::full({2, 2}, 4.0f);
  apply(t, [](float v) { return v * v; });
  for (float v : t.flat()) EXPECT_EQ(v, 16.0f);
}

TEST(Ops, MatmulEmptyDims) {
  Tensor a({0, 4});
  Tensor b({4, 3});
  Tensor c({0, 3});
  matmul(a, b, c);  // must not crash
  EXPECT_EQ(c.size(), 0u);
}

}  // namespace
}  // namespace nnlut
