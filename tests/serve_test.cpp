// Unit tests for the serving subsystem: queue/PendingResult semantics
// (incl. the one-shot get() guard), admission control (bounded depth,
// reject-new / reject-oldest shedding, depth accounting under concurrent
// submit/drain), dynamic batch formation (same-seq merging, max_batch /
// max_wait flush), per-request error isolation, cancellation, shutdown
// drain and stats.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "serve/batcher.h"
#include "serve/request_queue.h"
#include "serve/server.h"

namespace nnlut::serve {
namespace {

using namespace std::chrono_literals;

transformer::BatchInput make_request(std::size_t batch, std::size_t seq,
                                     int fill = 1) {
  transformer::BatchInput in;
  in.batch = batch;
  in.seq = seq;
  in.token_ids.assign(batch * seq, fill);
  return in;
}

/// A stand-in model: one output row per sequence; row r of the result is
/// {sum of that sequence's tokens, seq}. Splittable exactly like a
/// classification head, and deterministic.
Tensor toy_model(const transformer::BatchInput& in) {
  Tensor out({in.batch, 2});
  for (std::size_t b = 0; b < in.batch; ++b) {
    float sum = 0.0f;
    for (std::size_t j = 0; j < in.seq; ++j)
      sum += static_cast<float>(in.token_ids[b * in.seq + j]);
    out.at(b, 0) = sum;
    out.at(b, 1) = static_cast<float>(in.seq);
  }
  return out;
}

/// Records every batch the run function sees.
struct BatchRecorder {
  std::mutex mu;
  std::vector<std::pair<std::size_t, std::size_t>> calls;  // (batch, seq)

  Batcher::RunFn fn() {
    return [this](const transformer::BatchInput& in) {
      {
        std::lock_guard<std::mutex> lk(mu);
        calls.emplace_back(in.batch, in.seq);
      }
      return toy_model(in);
    };
  }
};

// ------------------------------------------------------- request queue ---

TEST(RequestQueue, SubmitDrainRoundtrip) {
  RequestQueue q;
  PendingResult r = q.submit(make_request(1, 4));
  EXPECT_TRUE(r.valid());
  EXPECT_FALSE(r.ready());
  EXPECT_EQ(q.depth(), 1u);

  auto drained = q.wait_drain(std::nullopt);
  ASSERT_EQ(drained.size(), 1u);
  EXPECT_EQ(drained[0].input.seq, 4u);
  EXPECT_EQ(q.depth(), 0u);

  ASSERT_TRUE(drained[0].state->claim());
  drained[0].state->set_value(Tensor({1, 2}));
  EXPECT_TRUE(r.ready());
  const Tensor t = r.get();
  EXPECT_EQ(t.dim(0), 1u);
}

TEST(RequestQueue, SubmitAfterCloseRejects) {
  RequestQueue q;
  q.close();
  PendingResult r = q.submit(make_request(1, 4));
  EXPECT_TRUE(r.ready());
  EXPECT_THROW(r.get(), RequestCancelled);
}

TEST(RequestQueue, WaitDrainHonorsDeadline) {
  RequestQueue q;
  const auto t0 = std::chrono::steady_clock::now();
  auto drained = q.wait_drain(t0 + 20ms);
  EXPECT_TRUE(drained.empty());
  EXPECT_GE(std::chrono::steady_clock::now() - t0, 20ms);
}

TEST(RequestQueue, CancelQueuedRequest) {
  RequestQueue q;
  PendingResult r = q.submit(make_request(1, 4));
  EXPECT_TRUE(r.cancel());
  EXPECT_THROW(r.get(), RequestCancelled);
  // The scheduler-side claim must fail so the batcher skips it.
  auto drained = q.wait_drain(std::nullopt);
  ASSERT_EQ(drained.size(), 1u);
  EXPECT_FALSE(drained[0].state->claim());
}

TEST(PendingResult, SecondGetThrowsLogicError) {
  // get() moves the logits out; a second get() must throw std::logic_error
  // instead of handing back a moved-from tensor — including through a copy
  // of the handle, since copies share the result state.
  RequestQueue q;
  PendingResult r = q.submit(make_request(1, 4));
  PendingResult copy = r;
  auto drained = q.wait_drain(std::nullopt);
  ASSERT_TRUE(drained[0].state->claim());
  drained[0].state->set_value(toy_model(drained[0].input));
  const Tensor t = r.get();
  EXPECT_EQ(t.dim(0), 1u);
  EXPECT_THROW(r.get(), std::logic_error);
  EXPECT_THROW(copy.get(), std::logic_error);
  // The handle stays ready/waitable; only the one-shot value is spent.
  EXPECT_TRUE(r.ready());
}

TEST(PendingResult, ErrorResultsRethrowOnEveryGet) {
  // Unlike the one-shot value path, a rejected request's error must stay
  // observable: each get() rethrows the same stored exception.
  RequestQueue q;
  PendingResult r = q.submit(make_request(1, 4));
  EXPECT_TRUE(r.cancel());
  EXPECT_THROW(r.get(), RequestCancelled);
  EXPECT_THROW(r.get(), RequestCancelled);
}

TEST(RequestQueue, CancelAfterClaimFails) {
  RequestQueue q;
  PendingResult r = q.submit(make_request(1, 4));
  auto drained = q.wait_drain(std::nullopt);
  ASSERT_TRUE(drained[0].state->claim());
  EXPECT_FALSE(r.cancel());
  drained[0].state->set_value(Tensor({1, 2}));
  EXPECT_NO_THROW(r.get());
}

// ------------------------------------------ on_ready (async completion) ---
// The network front-end routes results back to connections through
// on_ready; these regressions pin the contract it leans on (exactly-once,
// immediate-if-done, capture release, resolved-after-submitter-gone).

TEST(PendingResultOnReady, FiresExactlyOnceOnEveryResolutionPath) {
  // Value path.
  {
    RequestQueue q;
    PendingResult r = q.submit(make_request(1, 4));
    std::atomic<int> fired{0};
    r.on_ready([&fired] { fired.fetch_add(1); });
    auto drained = q.wait_drain(std::nullopt);
    ASSERT_TRUE(drained[0].state->claim());
    drained[0].state->set_value(toy_model(drained[0].input));
    EXPECT_EQ(fired.load(), 1);
    EXPECT_NO_THROW(r.get());
    EXPECT_EQ(fired.load(), 1);  // get() must not re-fire it
  }
  // Error path.
  {
    RequestQueue q;
    PendingResult r = q.submit(make_request(1, 4));
    std::atomic<int> fired{0};
    r.on_ready([&fired] { fired.fetch_add(1); });
    auto drained = q.wait_drain(std::nullopt);
    ASSERT_TRUE(drained[0].state->claim());
    drained[0].state->set_error(
        std::make_exception_ptr(std::runtime_error("boom")));
    EXPECT_EQ(fired.load(), 1);
    EXPECT_THROW(r.get(), std::runtime_error);
    EXPECT_EQ(fired.load(), 1);
  }
  // Cancel path: the canceller's thread runs the callback.
  {
    RequestQueue q;
    PendingResult r = q.submit(make_request(1, 4));
    std::atomic<int> fired{0};
    r.on_ready([&fired] { fired.fetch_add(1); });
    EXPECT_TRUE(r.cancel());
    EXPECT_EQ(fired.load(), 1);
    EXPECT_FALSE(r.cancel());  // second cancel resolves nothing
    EXPECT_EQ(fired.load(), 1);
  }
  // Eviction path (reject-oldest shed fires the victim's callback).
  {
    RequestQueue q({/*max_queue_depth=*/1, ShedPolicy::kRejectOldest});
    PendingResult victim = q.submit(make_request(1, 4));
    std::atomic<int> fired{0};
    victim.on_ready([&fired] { fired.fetch_add(1); });
    PendingResult usurper = q.submit(make_request(1, 4));
    EXPECT_EQ(fired.load(), 1);
    EXPECT_THROW(victim.get(), ServerOverloaded);
    EXPECT_EQ(fired.load(), 1);
  }
  // Shutdown drain: the stopper rejects what is still queued.
  {
    RequestQueue q;
    PendingResult r = q.submit(make_request(1, 4));
    std::atomic<int> fired{0};
    r.on_ready([&fired] { fired.fetch_add(1); });
    q.close();
    auto drained = q.wait_drain(std::nullopt);
    ASSERT_EQ(drained.size(), 1u);
    EXPECT_TRUE(drained[0].state->reject_if_queued(
        std::make_exception_ptr(RequestCancelled("serve: shutting down"))));
    EXPECT_EQ(fired.load(), 1);
    EXPECT_THROW(r.get(), RequestCancelled);
  }
}

TEST(PendingResultOnReady, RunsImmediatelyWhenAlreadyResolved) {
  RequestQueue q;
  PendingResult r = q.submit(make_request(1, 4));
  EXPECT_TRUE(r.cancel());
  std::atomic<int> fired{0};
  r.on_ready([&fired] { fired.fetch_add(1); });
  EXPECT_EQ(fired.load(), 1);  // on the registering thread, synchronously
}

TEST(PendingResultOnReady, RegistrationMisuseThrows) {
  RequestQueue q;
  PendingResult r = q.submit(make_request(1, 4));
  EXPECT_THROW(r.on_ready(nullptr), std::invalid_argument);
  r.on_ready([] {});
  EXPECT_THROW(r.on_ready([] {}), std::logic_error);  // at most one callback
  // Misuse must not have resolved or broken the request.
  EXPECT_FALSE(r.ready());
  EXPECT_TRUE(r.cancel());
}

TEST(PendingResultOnReady, CapturesReleasedRightAfterInvocation) {
  // The callback's captures must be destroyed as soon as it has run — a
  // callback pinning a resource (here: a shared_ptr) must not keep it alive
  // until the queue or the handle dies.
  RequestQueue q;
  PendingResult r = q.submit(make_request(1, 4));
  auto pinned = std::make_shared<int>(42);
  std::weak_ptr<int> watch = pinned;
  r.on_ready([held = std::move(pinned)] { (void)*held; });
  EXPECT_FALSE(watch.expired());  // held by the registered callback
  EXPECT_TRUE(r.cancel());
  EXPECT_TRUE(watch.expired());  // released the moment it fired
}

TEST(PendingResultOnReady, ResolveAfterSubmitterGoneNeverTouchesFreedState) {
  // The network session registers callbacks holding a weak_ptr to itself; a
  // request resolving after the session died must observe an expired
  // weak_ptr and fall back to shared counters — never the freed session.
  // Under ASan this regression pins the absence of use-after-free.
  struct Submitter {
    std::atomic<int>& delivered;
    explicit Submitter(std::atomic<int>& d) : delivered(d) {}
    void complete() { delivered.fetch_add(1); }
  };
  std::atomic<int> delivered{0};
  auto dropped = std::make_shared<std::atomic<int>>(0);

  RequestQueue q;
  PendingResult r = q.submit(make_request(1, 4));
  auto submitter = std::make_shared<Submitter>(delivered);
  r.on_ready([weak = std::weak_ptr<Submitter>(submitter), dropped] {
    if (auto s = weak.lock())
      s->complete();
    else
      dropped->fetch_add(1);
  });
  submitter.reset();  // the owning connection dies with the request in flight

  auto drained = q.wait_drain(std::nullopt);
  ASSERT_TRUE(drained[0].state->claim());
  drained[0].state->set_value(toy_model(drained[0].input));  // resolve late
  EXPECT_EQ(delivered.load(), 0);
  EXPECT_EQ(dropped->load(), 1);
}

// --------------------------------------------------- admission control ---

TEST(RequestQueueAdmission, RejectNewShedsTheIncomingRequest) {
  RequestQueue q({/*max_queue_depth=*/2, ShedPolicy::kRejectNew});
  SubmitOutcome out;
  PendingResult r1 = q.submit(make_request(1, 4), &out);
  EXPECT_EQ(out.status, SubmitOutcome::Status::kAccepted);
  PendingResult r2 = q.submit(make_request(1, 4), &out);
  EXPECT_EQ(out.status, SubmitOutcome::Status::kAccepted);
  EXPECT_EQ(q.depth(), 2u);

  PendingResult r3 = q.submit(make_request(1, 4), &out);
  EXPECT_EQ(out.status, SubmitOutcome::Status::kRejectedOverload);
  EXPECT_TRUE(r3.ready());
  EXPECT_THROW(r3.get(), ServerOverloaded);
  // The queued requests are untouched and the depth bound held.
  EXPECT_EQ(q.depth(), 2u);
  EXPECT_EQ(q.peak_depth(), 2u);
  EXPECT_FALSE(r1.ready());
  EXPECT_FALSE(r2.ready());
}

TEST(RequestQueueAdmission, RejectOldestEvictsToAdmit) {
  RequestQueue q({/*max_queue_depth=*/2, ShedPolicy::kRejectOldest});
  PendingResult r1 = q.submit(make_request(1, 4, 1));
  PendingResult r2 = q.submit(make_request(1, 4, 2));
  SubmitOutcome out;
  PendingResult r3 = q.submit(make_request(1, 4, 3), &out);
  EXPECT_EQ(out.status, SubmitOutcome::Status::kAccepted);
  EXPECT_EQ(out.evicted_overload, 1u);
  EXPECT_EQ(out.evicted_cancelled, 0u);
  // The oldest request was shed with ServerOverloaded; the new one queued.
  EXPECT_THROW(r1.get(), ServerOverloaded);
  EXPECT_EQ(q.depth(), 2u);
  auto drained = q.wait_drain(std::nullopt);
  ASSERT_EQ(drained.size(), 2u);
  EXPECT_EQ(drained[0].input.token_ids[0], 2);
  EXPECT_EQ(drained[1].input.token_ids[0], 3);
  (void)r2;
}

TEST(RequestQueueAdmission, RejectOldestReportsCancelledEvictions) {
  // An evicted entry that was already cancelled frees its slot but must be
  // reported as cancelled, not as an overload shed — it already resolved
  // with RequestCancelled and the scheduler will never drain it.
  RequestQueue q({/*max_queue_depth=*/2, ShedPolicy::kRejectOldest});
  PendingResult r1 = q.submit(make_request(1, 4, 1));
  PendingResult r2 = q.submit(make_request(1, 4, 2));
  EXPECT_TRUE(r1.cancel());
  SubmitOutcome out;
  PendingResult r3 = q.submit(make_request(1, 4, 3), &out);
  EXPECT_EQ(out.status, SubmitOutcome::Status::kAccepted);
  EXPECT_EQ(out.evicted_overload, 0u);
  EXPECT_EQ(out.evicted_cancelled, 1u);
  EXPECT_THROW(r1.get(), RequestCancelled);  // the original cancel sticks
  EXPECT_EQ(q.depth(), 2u);
  (void)r2;
  (void)r3;
}

TEST(RequestQueueAdmission, DepthAccountingUnderConcurrentSubmitDrain) {
  // peak_depth() is a true high-water mark of depth(): with producers and
  // a draining consumer racing, depth() <= peak_depth() at every sample
  // (both update atomically under the queue mutex, and peak only grows),
  // and after everything drains depth() is exactly 0.
  RequestQueue q;
  constexpr int kProducers = 3, kPerProducer = 40;
  std::atomic<std::size_t> drained_total{0};
  std::atomic<bool> stop_sampling{false};

  std::thread consumer([&] {
    while (drained_total.load() < kProducers * kPerProducer) {
      auto batch =
          q.wait_drain(std::chrono::steady_clock::now() + 1ms);
      for (auto& sub : batch) {
        ASSERT_TRUE(sub.state->claim());
        sub.state->set_value(toy_model(sub.input));
      }
      drained_total.fetch_add(batch.size());
    }
  });
  std::thread sampler([&] {
    while (!stop_sampling.load()) {
      const std::size_t d = q.depth();
      // Read peak after depth: peak is monotonic and was >= d when d was
      // sampled, so the inequality must hold at every interleaving.
      ASSERT_LE(d, q.peak_depth());
      ASSERT_LE(d, static_cast<std::size_t>(kProducers * kPerProducer));
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> producers;
  std::vector<std::vector<PendingResult>> results(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i)
        results[static_cast<std::size_t>(p)].push_back(
            q.submit(make_request(1, 4, p * 100 + i)));
    });
  }
  for (auto& t : producers) t.join();
  consumer.join();
  stop_sampling.store(true);
  sampler.join();

  EXPECT_EQ(q.depth(), 0u);
  EXPECT_GE(q.peak_depth(), 1u);
  EXPECT_LE(q.peak_depth(), static_cast<std::size_t>(kProducers * kPerProducer));
  for (auto& rs : results)
    for (auto& r : rs) EXPECT_NO_THROW(r.get());
}

TEST(RequestQueueAdmission, DepthsSnapshotIsInternallyConsistent) {
  // Regression for the stats-snapshot race: reading depth() and
  // peak_depth() as two lock acquisitions lets a submit land in between,
  // yielding an impossible depth > peak pair. depths() takes both under
  // one lock, so depth <= peak must hold in EVERY snapshot — hammer it
  // while producers and a consumer churn the queue.
  RequestQueue q;
  constexpr int kProducers = 3, kPerProducer = 60;
  std::atomic<std::size_t> drained_total{0};
  std::atomic<bool> stop_sampling{false};

  std::thread consumer([&] {
    while (drained_total.load() < kProducers * kPerProducer) {
      auto batch = q.wait_drain(std::chrono::steady_clock::now() + 1ms);
      for (auto& sub : batch) {
        ASSERT_TRUE(sub.state->claim());
        sub.state->set_value(toy_model(sub.input));
      }
      drained_total.fetch_add(batch.size());
    }
  });
  std::thread sampler([&] {
    while (!stop_sampling.load()) {
      const RequestQueue::Depths d = q.depths();
      ASSERT_LE(d.depth, d.peak);
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> producers;
  std::vector<std::vector<PendingResult>> results(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i)
        results[static_cast<std::size_t>(p)].push_back(
            q.submit(make_request(1, 4, p * 100 + i)));
    });
  }
  for (auto& t : producers) t.join();
  consumer.join();
  stop_sampling.store(true);
  sampler.join();

  const RequestQueue::Depths final_d = q.depths();
  EXPECT_EQ(final_d.depth, 0u);
  EXPECT_GE(final_d.peak, 1u);
  for (auto& rs : results)
    for (auto& r : rs) EXPECT_NO_THROW(r.get());
}

// ------------------------------------------------------------- batcher ---

TEST(Batcher, MergesSameSeqUpToMaxBatch) {
  RequestQueue q;
  BatchRecorder rec;
  {
    // Huge max_wait: only the max_batch threshold can flush.
    Batcher b(q, rec.fn(), {/*max_batch=*/4, /*max_wait=*/10min});
    std::vector<PendingResult> rs;
    for (int i = 0; i < 4; ++i) rs.push_back(q.submit(make_request(1, 8, i)));
    for (auto& r : rs) r.wait();
    // Each result row must be the request's own: sum == token * seq.
    for (int i = 0; i < 4; ++i) {
      Tensor t = rs[static_cast<std::size_t>(i)].get();
      ASSERT_EQ(t.dim(0), 1u);
      EXPECT_EQ(t.at(0, 0), static_cast<float>(i * 8));
    }
  }
  // All four merged into one model call of batch 4 (they were queued
  // together before the scheduler drained).
  std::lock_guard<std::mutex> lk(rec.mu);
  ASSERT_GE(rec.calls.size(), 1u);
  std::size_t total = 0;
  for (auto& c : rec.calls) {
    EXPECT_LE(c.first, 4u);
    EXPECT_EQ(c.second, 8u);
    total += c.first;
  }
  EXPECT_EQ(total, 4u);
}

TEST(Batcher, DifferentSeqNeverMerge) {
  RequestQueue q;
  BatchRecorder rec;
  {
    Batcher b(q, rec.fn(), {/*max_batch=*/8, /*max_wait=*/1ms});
    PendingResult a = q.submit(make_request(1, 4));
    PendingResult c = q.submit(make_request(1, 6));
    Tensor ta = a.get(), tc = c.get();
    EXPECT_EQ(ta.at(0, 1), 4.0f);
    EXPECT_EQ(tc.at(0, 1), 6.0f);
  }
  std::lock_guard<std::mutex> lk(rec.mu);
  for (auto& c : rec.calls) EXPECT_EQ(c.first, 1u);  // never merged
}

TEST(Batcher, MaxWaitFlushesUnderfullBucket) {
  RequestQueue q;
  BatchRecorder rec;
  Batcher b(q, rec.fn(), {/*max_batch=*/64, /*max_wait=*/2ms});
  PendingResult r = q.submit(make_request(1, 8));
  // Nothing else arrives; the 2ms deadline must flush the lone request.
  EXPECT_TRUE(r.wait_for(2s));
  EXPECT_NO_THROW(r.get());
}

TEST(Batcher, MultiSequenceRequestsStayWhole) {
  RequestQueue q;
  BatchRecorder rec;
  {
    Batcher b(q, rec.fn(), {/*max_batch=*/4, /*max_wait=*/10min});
    // 3 + 3 sequences with max_batch 4: requests must not split, so the
    // scheduler runs them as two batches of 3 (3+3 > 4).
    PendingResult a = q.submit(make_request(3, 8, 2));
    PendingResult c = q.submit(make_request(3, 8, 5));
    q.close();  // drain mode flushes both
    Tensor ta = a.get(), tc = c.get();
    ASSERT_EQ(ta.dim(0), 3u);
    ASSERT_EQ(tc.dim(0), 3u);
    for (std::size_t i = 0; i < 3; ++i) {
      EXPECT_EQ(ta.at(i, 0), 16.0f);
      EXPECT_EQ(tc.at(i, 0), 40.0f);
    }
  }
  std::lock_guard<std::mutex> lk(rec.mu);
  for (auto& c : rec.calls) EXPECT_LE(c.first, 4u);
}

TEST(Batcher, OversizeRequestStillRuns) {
  RequestQueue q;
  BatchRecorder rec;
  Batcher b(q, rec.fn(), {/*max_batch=*/2, /*max_wait=*/1ms});
  PendingResult r = q.submit(make_request(5, 8, 1));
  Tensor t = r.get();
  EXPECT_EQ(t.dim(0), 5u);
}

TEST(Batcher, SoloFallbackIsolatesPoisonedBatch) {
  RequestQueue q;
  // Model that rejects any batch containing a negative token.
  std::atomic<int> calls{0};
  Batcher::RunFn poisonable = [&](const transformer::BatchInput& in) {
    calls.fetch_add(1);
    for (int t : in.token_ids)
      if (t < 0) throw std::out_of_range("bad token " + std::to_string(t));
    return toy_model(in);
  };
  Batcher b(q, poisonable, {/*max_batch=*/3, /*max_wait=*/10min});
  PendingResult good1 = q.submit(make_request(1, 8, 3));
  PendingResult bad = q.submit(make_request(1, 8, -7));
  PendingResult good2 = q.submit(make_request(1, 8, 4));
  // The merged batch throws; the solo fallback must reject only `bad`.
  Tensor t1 = good1.get();
  EXPECT_EQ(t1.at(0, 0), 24.0f);
  Tensor t2 = good2.get();
  EXPECT_EQ(t2.at(0, 0), 32.0f);
  try {
    bad.get();
    FAIL() << "poisoned request must throw";
  } catch (const std::out_of_range& e) {
    EXPECT_NE(std::string(e.what()).find("bad token -7"), std::string::npos);
  }
}

TEST(Batcher, StopDrainsEverything) {
  RequestQueue q;
  BatchRecorder rec;
  Batcher b(q, rec.fn(), {/*max_batch=*/64, /*max_wait=*/10min});
  std::vector<PendingResult> rs;
  for (int i = 0; i < 10; ++i) rs.push_back(q.submit(make_request(1, 8, i)));
  b.stop();  // must flush the under-full bucket before joining
  for (auto& r : rs) {
    EXPECT_TRUE(r.ready());
    EXPECT_NO_THROW(r.get());
  }
}

TEST(Batcher, CancelledRequestSkippedByScheduler) {
  RequestQueue q;
  BatchRecorder rec;
  Batcher b(q, rec.fn(), {/*max_batch=*/2, /*max_wait=*/2ms});
  PendingResult victim = q.submit(make_request(1, 8, 1));
  EXPECT_TRUE(victim.cancel());
  PendingResult a = q.submit(make_request(1, 8, 2));
  PendingResult c = q.submit(make_request(1, 8, 3));
  EXPECT_NO_THROW(a.get());
  EXPECT_NO_THROW(c.get());
  EXPECT_THROW(victim.get(), RequestCancelled);
  std::lock_guard<std::mutex> lk(rec.mu);
  for (auto& call : rec.calls) EXPECT_LE(call.first, 2u);
}

// ------------------------------------------------------------ histogram ---

// Pins BOTH quantile semantics on the same data. quantile_us returns the
// log2-bucket UPPER BOUNDARY holding the quantile (a conservative bound —
// the documented meaning of SlotStats::p50/p95_latency_us); quantile()
// linearly interpolates within the bucket.
TEST(LatencyHistogram, QuantilesFromBuckets) {
  LatencyHistogram h;
  for (int i = 0; i < 90; ++i) h.record(3us);    // bucket [2,4)
  for (int i = 0; i < 10; ++i) h.record(1000us);  // bucket [512,1024)
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.quantile_us(0.50), 4.0);
  EXPECT_EQ(h.quantile_us(0.95), 1024.0);

  // Interpolated: the 50th of 90 observations in [2,4) sits 50/90 of the
  // way through the bucket; the 95th lands halfway through [512,1024).
  EXPECT_NEAR(h.quantile(0.50), 2.0 + 2.0 * (50.0 / 90.0), 1e-9);
  EXPECT_NEAR(h.quantile(0.95), 512.0 + 0.5 * 512.0, 1e-9);
  // The boundary reading never under-reports the interpolated one.
  EXPECT_GE(h.quantile_us(0.50), h.quantile(0.50));
  EXPECT_GE(h.quantile_us(0.95), h.quantile(0.95));
}

TEST(LatencyHistogram, SumMergeAndBuckets) {
  LatencyHistogram a, b;
  a.record(3us);
  a.record(3us);
  b.record(1000us);
  EXPECT_EQ(a.sum_us(), 6u);
  EXPECT_EQ(b.sum_us(), 1000u);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.sum_us(), 1006u);
  EXPECT_EQ(a.bucket_count(1), 2u);  // [2,4)
  EXPECT_EQ(a.bucket_count(9), 1u);  // [512,1024)
  EXPECT_EQ(LatencyHistogram::bucket_upper_us(1), 4.0);
  EXPECT_EQ(LatencyHistogram::bucket_upper_us(9), 1024.0);
}

// The ledger decomposes each request's latency into pipeline stages; the
// snapshot exposes per-stage interpolated quantiles plus the raw histogram
// copies the metrics registry scrapes.
TEST(StatsLedger, StageDecomposition) {
  StatsLedger ledger;
  StageLatency st;
  st.queue_wait = 3us;
  st.batch_wait = 10us;
  st.exec = 100us;
  st.resolve = 5us;
  st.total = 118us;
  for (int i = 0; i < 4; ++i) ledger.record_done(st, /*ok=*/true);
  const SlotStats s = ledger.snapshot();
  EXPECT_EQ(s.completed, 4u);
  EXPECT_EQ(s.stage_queue_wait.count, 4u);
  EXPECT_EQ(s.stage_exec.count, 4u);
  EXPECT_EQ(s.stage_exec.mean_us, 100.0);
  EXPECT_EQ(s.hist_total.count(), 4u);
  EXPECT_EQ(s.hist_total.sum_us(), 4u * 118u);
  EXPECT_EQ(s.hist_queue_wait.bucket_count(1), 4u);   // 3us -> [2,4)
  EXPECT_EQ(s.hist_exec.bucket_count(6), 4u);         // 100us -> [64,128)
  // Interpolated stage quantiles stay inside their bucket.
  EXPECT_GE(s.stage_exec.p50_us, 64.0);
  EXPECT_LE(s.stage_exec.p50_us, 128.0);
}

}  // namespace
}  // namespace nnlut::serve
