// Parameterized property tests of the hardware cost model: monotonicity,
// frequency behaviour and cross-unit invariants that must hold regardless
// of technology-constant calibration.
#include <gtest/gtest.h>

#include "hwmodel/units.h"

namespace nnlut::hw {
namespace {

class EntriesSweep : public ::testing::TestWithParam<int> {};

TEST_P(EntriesSweep, AreaMonotoneInEntries) {
  const CellLibrary lib;
  const int entries = GetParam();
  const double a = build_nnlut_unit(lib, UnitPrecision::kInt32, entries)
                       .report()
                       .area_um2;
  const double a2 = build_nnlut_unit(lib, UnitPrecision::kInt32, entries * 2)
                        .report()
                        .area_um2;
  EXPECT_GT(a2, a);
}

TEST_P(EntriesSweep, DelayIndependentOfEntriesWithinStage) {
  // Lookup is a parallel comparator bank; the MAC stage dominates the
  // critical path, so delay must not blow up with the table size.
  const CellLibrary lib;
  const int entries = GetParam();
  const double d16 =
      build_nnlut_unit(lib, UnitPrecision::kInt32, 16).report().delay_ns;
  const double d =
      build_nnlut_unit(lib, UnitPrecision::kInt32, entries).report().delay_ns;
  EXPECT_NEAR(d, d16, d16 * 0.5) << entries;
}

INSTANTIATE_TEST_SUITE_P(Entries, EntriesSweep,
                         ::testing::Values(4, 8, 16, 32, 64));

TEST(FrequencyScaling, DynamicPowerScalesLinearly) {
  const CellLibrary lib;
  const Datapath dp = build_nnlut_unit(lib, UnitPrecision::kInt32);
  const UnitReport at1 = dp.report(1.0);
  const UnitReport at2 = dp.report(2.0);
  const double leak = dp.total_leakage_mw();
  EXPECT_NEAR(at2.power_mw - leak, 2.0 * (at1.power_mw - leak),
              1e-9 + 0.01 * (at1.power_mw - leak));
}

TEST(FrequencyScaling, AreaAndDelayFrequencyInvariant) {
  const CellLibrary lib;
  const Datapath dp = build_ibert_unit(lib);
  EXPECT_EQ(dp.report(0.5).area_um2, dp.report(2.0).area_um2);
  EXPECT_EQ(dp.report(0.5).delay_ns, dp.report(2.0).delay_ns);
}

TEST(TechnologyScaling, AreaProportionalToGateArea) {
  Technology t = Technology::generic_7nm();
  const double a1 =
      build_nnlut_unit(CellLibrary(t), UnitPrecision::kInt32).report().area_um2;
  t.area_per_gate_um2 *= 2.0;
  const double a2 =
      build_nnlut_unit(CellLibrary(t), UnitPrecision::kInt32).report().area_um2;
  EXPECT_NEAR(a2, 2.0 * a1, 1e-6);
}

TEST(CrossUnit, IbertLatencyAlwaysExceedsNnlut) {
  const CellLibrary lib;
  const UnitReport ib = build_ibert_unit(lib).report();
  const UnitReport nn = build_nnlut_unit(lib, UnitPrecision::kInt32).report();
  for (const auto& [op, cycles] : ib.latency_cycles) {
    if (nn.latency_cycles.count(op)) {
      EXPECT_GT(cycles, nn.latency_cycles.at(op)) << op;
    }
  }
}

TEST(CrossUnit, InitiationIntervalsConsistentWithLatency) {
  const CellLibrary lib;
  const UnitReport ib = build_ibert_unit(lib).report();
  for (const auto& [op, ii] : ib.initiation_interval) {
    EXPECT_GT(ii, 0.0) << op;
    EXPECT_LE(ii, ib.latency_cycles.at(op)) << op;  // II never exceeds latency
  }
}

TEST(CrossUnit, PrecisionNamesStable) {
  EXPECT_STREQ(precision_name(UnitPrecision::kInt32), "INT32");
  EXPECT_STREQ(precision_name(UnitPrecision::kFp16), "FP16");
  EXPECT_STREQ(precision_name(UnitPrecision::kFp32), "FP32");
}

}  // namespace
}  // namespace nnlut::hw
