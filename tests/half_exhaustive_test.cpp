// Exhaustive verification of the binary16 emulation: every one of the 65536
// half bit patterns must round-trip half -> float -> half exactly (modulo
// NaN payload canonicalization), and conversion must be monotone.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "numerics/half.h"

namespace nnlut {
namespace {

bool is_nan_bits(std::uint16_t h) {
  return ((h >> 10) & 0x1f) == 0x1f && (h & 0x3ff) != 0;
}

TEST(HalfExhaustive, AllBitPatternsRoundTrip) {
  for (std::uint32_t bits = 0; bits <= 0xffff; ++bits) {
    const auto h = static_cast<std::uint16_t>(bits);
    const float f = half_bits_to_float(h);
    const std::uint16_t back = float_to_half_bits(f);
    if (is_nan_bits(h)) {
      EXPECT_TRUE(is_nan_bits(back)) << std::hex << bits;
    } else {
      EXPECT_EQ(back, h) << std::hex << bits;
    }
  }
}

TEST(HalfExhaustive, ConversionIsMonotoneOnNonNegatives) {
  // Half bit patterns 0x0000..0x7c00 represent increasing values.
  float prev = half_bits_to_float(0);
  for (std::uint32_t bits = 1; bits <= 0x7c00; ++bits) {
    const float f = half_bits_to_float(static_cast<std::uint16_t>(bits));
    EXPECT_GT(f, prev) << std::hex << bits;
    prev = f;
  }
}

TEST(HalfExhaustive, NegativeMirror) {
  for (std::uint32_t bits = 0; bits <= 0x7c00; ++bits) {
    const float pos = half_bits_to_float(static_cast<std::uint16_t>(bits));
    const float neg =
        half_bits_to_float(static_cast<std::uint16_t>(bits | 0x8000));
    EXPECT_EQ(neg, -pos) << std::hex << bits;
  }
}

TEST(HalfExhaustive, RoundToNearestNeverSkips) {
  // For every adjacent pair of finite halves, the midpoint rounds to one of
  // the two (never a third value).
  for (std::uint32_t bits = 0; bits < 0x7bff; ++bits) {
    const float a = half_bits_to_float(static_cast<std::uint16_t>(bits));
    const float b = half_bits_to_float(static_cast<std::uint16_t>(bits + 1));
    const float mid = a + (b - a) * 0.5f;
    const float r = round_to_half(mid);
    EXPECT_TRUE(r == a || r == b) << std::hex << bits;
  }
}

}  // namespace
}  // namespace nnlut
