// Tests for the approximation-aware fine-tuning layers: gradient checks of
// LutAct / LutLayerNorm against finite differences, consistency with the
// exact layers when the LUT is dense, and an end-to-end fine-tuning
// integration test showing a coarse approximation's accuracy being recovered.
#include <gtest/gtest.h>

#include <cmath>

#include "approx/linear_lut.h"
#include "core/function_library.h"
#include "eval/finetune.h"
#include "nn/approx_training.h"
#include "numerics/rng.h"

namespace nnlut {
namespace {

using nn::LutAct;
using nn::LutLayerNorm;

Tensor random_tensor(std::initializer_list<std::size_t> shape, Rng& rng,
                     float scale = 1.0f) {
  Tensor t(shape);
  for (float& v : t.flat()) v = rng.uniform(-scale, scale);
  return t;
}

double weighted_sum(const Tensor& y, const Tensor& w) {
  double s = 0;
  for (std::size_t i = 0; i < y.size(); ++i)
    s += static_cast<double>(y[i]) * w[i];
  return s;
}

TEST(LutActLayer, ForwardMatchesLut) {
  const FittedLut fit = fit_lut(TargetFn::kGelu, 16, FitPreset::kFast, 3);
  LutAct act(&fit.lut);
  Rng rng(1);
  const Tensor x = random_tensor({4, 8}, rng, 4.0f);
  const Tensor y = act.forward(x);
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_EQ(y[i], fit.lut(x[i]));
}

TEST(LutActLayer, BackwardIsSegmentSlope) {
  // A LUT we know the slopes of: y = -x for x<0, y = 2x for x>=0.
  const PiecewiseLinear lut({0.0f}, {-1.0f, 2.0f}, {0.0f, 0.0f});
  LutAct act(&lut);
  Tensor x({1, 2});
  x[0] = -3.0f;
  x[1] = 4.0f;
  (void)act.forward(x);
  Tensor dy({1, 2});
  dy.fill(1.0f);
  const Tensor dx = act.backward(dy);
  EXPECT_EQ(dx[0], -1.0f);
  EXPECT_EQ(dx[1], 2.0f);
}

TEST(LutActLayer, GradientMatchesFiniteDifference) {
  const FittedLut fit = fit_lut(TargetFn::kGelu, 16, FitPreset::kFast, 4);
  LutAct act(&fit.lut);
  Rng rng(2);
  const Tensor x = random_tensor({3, 6}, rng, 3.0f);
  const Tensor w = random_tensor({3, 6}, rng);
  (void)act.forward(x);
  const Tensor dx = act.backward(w);

  const float eps = 1e-3f;
  for (std::size_t i : {std::size_t{0}, std::size_t{7}, std::size_t{17}}) {
    Tensor x2 = x;
    x2[i] += eps;
    const double up = weighted_sum(act.forward(x2), w);
    x2[i] -= 2 * eps;
    const double dn = weighted_sum(act.forward(x2), w);
    // Piecewise-linear: FD equals the slope unless the probe straddles a
    // breakpoint; allow for that with a generous tolerance.
    EXPECT_NEAR(dx[i], (up - dn) / (2 * eps), 0.2) << i;
  }
}

TEST(LutActLayer, ThrowsWithoutLut) {
  LutAct act;
  Tensor x({1, 1});
  EXPECT_THROW(act.forward(x), std::logic_error);
}

TEST(LutLayerNormLayer, MatchesExactWithDenseLut) {
  // A dense fixed-breakpoint rsqrt LUT makes LutLayerNorm ~= exact LayerNorm.
  const PiecewiseLinear rsqrt_lut = fit_fixed_breakpoint_lut(
      rsqrt_exact, {0.01f, 64.0f}, 512, BreakpointMode::kExponential);
  LutLayerNorm lut_ln(8, &rsqrt_lut, /*input_scaling=*/false);
  nn::LayerNorm exact_ln(8);

  Rng rng(5);
  const Tensor x = random_tensor({4, 8}, rng, 2.0f);
  const Tensor a = lut_ln.forward(x);
  const Tensor b = exact_ln.forward(x);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 5e-3f);
}

TEST(LutLayerNormLayer, GradientMatchesFiniteDifference) {
  const FittedLut fit = fit_lut(TargetFn::kRsqrt, 16, FitPreset::kFast, 6);
  LutLayerNorm ln(6, &fit.lut, /*input_scaling=*/true);
  Rng rng(7);
  for (float& v : ln.gamma.value.flat()) v = rng.uniform(0.5f, 1.5f);

  const Tensor x = random_tensor({3, 6}, rng, 2.0f);
  const Tensor w = random_tensor({3, 6}, rng);
  ln.gamma.zero_grad();
  ln.beta.zero_grad();
  (void)ln.forward(x);
  const Tensor dx = ln.backward(w);

  const float eps = 1e-3f;
  for (std::size_t i : {std::size_t{1}, std::size_t{8}, std::size_t{16}}) {
    Tensor x2 = x;
    x2[i] += eps;
    const double up = weighted_sum(ln.forward(x2), w);
    x2[i] -= 2 * eps;
    const double dn = weighted_sum(ln.forward(x2), w);
    EXPECT_NEAR(dx[i], (up - dn) / (2 * eps), 0.05) << i;
  }
}

TEST(LutLayerNormLayer, ParamGradients) {
  const FittedLut fit = fit_lut(TargetFn::kRsqrt, 16, FitPreset::kFast, 8);
  LutLayerNorm ln(4, &fit.lut);
  Rng rng(9);
  const Tensor x = random_tensor({2, 4}, rng, 2.0f);
  const Tensor w = random_tensor({2, 4}, rng);
  ln.gamma.zero_grad();
  ln.beta.zero_grad();
  (void)ln.forward(x);
  (void)ln.backward(w);

  const float eps = 1e-3f;
  for (std::size_t j = 0; j < 4; ++j) {
    ln.gamma.value[j] += eps;
    const double up = weighted_sum(ln.forward(x), w);
    ln.gamma.value[j] -= 2 * eps;
    const double dn = weighted_sum(ln.forward(x), w);
    ln.gamma.value[j] += eps;
    EXPECT_NEAR(ln.gamma.grad[j], (up - dn) / (2 * eps), 1e-2) << j;
  }
}

// --- End-to-end: fine-tuning rescues a coarse approximation. ---------------

TEST(Finetune, RecoversLinearLutLayerNormAccuracy) {
  using namespace eval;
  using transformer::ApproxSelection;
  using transformer::LutNonlinearities;
  using transformer::LutSet;

  tasks::TaskGenOptions o;
  o.n_train = 1024;
  o.n_dev = 256;
  o.seq_len = 20;
  o.seed = 31;
  const tasks::TaskData d = tasks::make_task(tasks::TaskId::kStsb, o);

  transformer::ModelConfig c = transformer::ModelConfig::roberta_like();
  c.vocab = 64;
  c.hidden = 32;
  c.layers = 2;
  c.heads = 2;
  c.ffn = 64;
  c.max_seq = 20;

  TrainOptions t;
  t.epochs = 8;
  t.batch_size = 32;
  t.lr = 1e-3f;
  t.seed = 3;
  auto model = train_model(d, c, t);
  const double baseline = evaluate_baseline(model, d);
  ASSERT_GT(baseline, 60.0);

  // Approximate LayerNorm with the coarse fixed-breakpoint baseline.
  const LutSet luts{fit_linear_lut(gelu_exact, kGeluRange, 16),
                    fit_linear_lut(exp_exact, kExpRange, 16),
                    fit_linear_lut(reciprocal_exact, kDivideRange, 16),
                    fit_linear_lut(rsqrt_exact, kRsqrtRange, 16)};
  LutNonlinearities::Options lopt;
  lopt.select = ApproxSelection::layernorm_only();
  auto backend = make_lut_backend(luts, LutPrecision::kFp32, lopt);
  const double direct = evaluate(model, d, *backend);

  // Approximation-aware fine-tuning with that same LUT in the graph.
  FinetuneOptions fopt;
  fopt.epochs = 4;
  finetune_with_luts(model, d, /*gelu_lut=*/nullptr, &luts.rsqrt, fopt);
  const double finetuned = evaluate(model, d, *backend);

  // Fine-tuning must recover a meaningful part of the lost accuracy.
  EXPECT_GT(finetuned, direct);
  EXPECT_GT(finetuned, baseline - 8.0);
}

TEST(Finetune, LutsUninstalledAfterReturn) {
  tasks::TaskGenOptions o;
  o.n_train = 256;
  o.n_dev = 64;
  o.seq_len = 16;
  const tasks::TaskData d = tasks::make_task(tasks::TaskId::kSst2, o);

  transformer::ModelConfig c = transformer::ModelConfig::roberta_like();
  c.vocab = 64;
  c.hidden = 16;
  c.layers = 1;
  c.heads = 2;
  c.ffn = 32;
  c.max_seq = 16;

  eval::TrainOptions t;
  t.epochs = 1;
  auto model = eval::train_model(d, c, t);

  const FittedLut gelu_fit = fit_lut(TargetFn::kGelu, 16, FitPreset::kFast, 2);
  const FittedLut rsqrt_fit = fit_lut(TargetFn::kRsqrt, 16, FitPreset::kFast, 2);
  eval::FinetuneOptions fopt;
  fopt.epochs = 1;
  eval::finetune_with_luts(model, d, &gelu_fit.lut, &rsqrt_fit.lut, fopt);

  // After fine-tuning the training graph is exact again: the training
  // forward must agree with the exact-backend inference engine.
  const auto in = eval::to_batch(d.dev, 0, 4);
  const Tensor train_logits = model.forward(in);
  transformer::ExactNonlinearities exact(model.config().act);
  transformer::InferenceModel infer(model, exact);
  const Tensor infer_logits = infer.logits(in);
  for (std::size_t i = 0; i < train_logits.size(); ++i)
    EXPECT_NEAR(train_logits[i], infer_logits[i], 1e-4f);
}

}  // namespace
}  // namespace nnlut
