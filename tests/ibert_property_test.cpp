// Property tests of the I-BERT integer kernels across quantization scales:
// accuracy must be stable over the scale sweep, softmax must preserve the
// argmax and ordering, and kernels must be scale-consistent.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "ibert/ibert_kernels.h"
#include "numerics/math.h"
#include "numerics/rng.h"

namespace nnlut::ibert {
namespace {

using nnlut::Rng;

class ScaleSweep : public ::testing::TestWithParam<int> {};

TEST_P(ScaleSweep, IExpAccurateAcrossScales) {
  const int bits = GetParam();
  const float s = 10.0f / static_cast<float>((1 << bits) - 1);
  double worst = 0.0;
  for (float x = -10.0f; x <= 0.0f; x += 0.01f) {
    const QValue out = i_exp({static_cast<std::int64_t>(std::llround(x / s)), s});
    worst = std::max(worst,
                     std::abs(static_cast<double>(out.value()) - std::exp(x)));
  }
  // Coarser scales quantize harder; tolerance loosens with fewer bits.
  EXPECT_LT(worst, bits >= 12 ? 0.02 : 0.06) << "bits=" << bits;
}

TEST_P(ScaleSweep, IGeluAccurateAcrossScales) {
  const int bits = GetParam();
  const float s = 5.0f / static_cast<float>((1 << bits) - 1);
  double worst = 0.0;
  for (float x = -5.0f; x <= 5.0f; x += 0.01f) {
    const QValue out =
        i_gelu({static_cast<std::int64_t>(std::llround(x / s)), s});
    worst = std::max(worst, std::abs(static_cast<double>(out.value()) -
                                     gelu_exact(x)));
  }
  EXPECT_LT(worst, bits >= 12 ? 0.035 : 0.08) << "bits=" << bits;
}

INSTANTIATE_TEST_SUITE_P(Bits, ScaleSweep, ::testing::Values(10, 12, 15, 20));

TEST(SoftmaxRowProperties, PreservesArgmaxAndOrdering) {
  Rng rng(21);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<float> row(24);
    for (float& v : row) v = rng.uniform(-6.0f, 6.0f);
    const std::size_t argmax_before = static_cast<std::size_t>(
        std::max_element(row.begin(), row.end()) - row.begin());
    std::vector<float> orig = row;
    softmax_row(row);
    const std::size_t argmax_after = static_cast<std::size_t>(
        std::max_element(row.begin(), row.end()) - row.begin());
    EXPECT_EQ(argmax_after, argmax_before) << trial;
    // Order preservation on a well-separated pair.
    for (std::size_t i = 0; i + 1 < row.size(); ++i)
      for (std::size_t j = i + 1; j < row.size(); ++j)
        if (orig[i] > orig[j] + 0.5f) {
          EXPECT_GE(row[i], row[j] - 1e-4f);
        }
  }
}

TEST(SoftmaxRowProperties, OutputsNonNegative) {
  Rng rng(22);
  std::vector<float> row(64);
  for (float& v : row) v = rng.uniform(-30.0f, 30.0f);
  softmax_row(row);
  for (float v : row) EXPECT_GE(v, 0.0f);
}

TEST(SoftmaxRowProperties, SingleElementRowIsOne) {
  std::vector<float> row{3.7f};
  softmax_row(row);
  EXPECT_NEAR(row[0], 1.0f, 0.01f);
}

TEST(LayerNormRowProperties, ShiftInvariance) {
  // LayerNorm(x + c) == LayerNorm(x); the integer pipeline must track this.
  Rng rng(23);
  std::vector<float> x(64), shifted(64), y1(64), y2(64);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.uniform(-2.0f, 2.0f);
    shifted[i] = x[i] + 7.5f;
  }
  layernorm_row(x, y1, {}, {});
  layernorm_row(shifted, y2, {}, {});
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(y1[i], y2[i], 0.05f) << i;
}

TEST(LayerNormRowProperties, ScaleEquivariance) {
  // LayerNorm(a*x) == LayerNorm(x) for a > 0.
  Rng rng(24);
  std::vector<float> x(64), scaled(64), y1(64), y2(64);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.uniform(-2.0f, 2.0f);
    scaled[i] = 5.0f * x[i];
  }
  layernorm_row(x, y1, {}, {});
  layernorm_row(scaled, y2, {}, {});
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(y1[i], y2[i], 0.05f) << i;
}

TEST(IPolyProperties, MatchesFloatPolynomialAcrossCoefficients) {
  Rng rng(25);
  for (int trial = 0; trial < 20; ++trial) {
    const float a = rng.uniform(-1.0f, 1.0f);
    const float b = rng.uniform(-2.0f, 2.0f);
    const float c = rng.uniform(-2.0f, 2.0f);
    if (std::abs(a) < 0.05f) continue;
    const float s = 4.0f / 8191.0f;
    for (float x : {-3.0f, -1.0f, 0.0f, 0.5f, 2.0f}) {
      const QValue out =
          i_poly({static_cast<std::int64_t>(std::llround(x / s)), s}, a, b, c);
      const float expect = a * (x + b) * (x + b) + c;
      EXPECT_NEAR(out.value(), expect, 0.05f)
          << "a=" << a << " b=" << b << " x=" << x;
    }
  }
}

TEST(ISqrtProperties, MonotoneNonDecreasing) {
  std::int64_t prev = 0;
  for (std::int64_t n = 0; n < 100000; n += 97) {
    const std::int64_t r = i_sqrt(n);
    EXPECT_GE(r, prev);
    prev = r;
  }
}

}  // namespace
}  // namespace nnlut::ibert
