// Property tests for the paper's central claim (Sec. 3.2): the NN -> LUT
// transformation is exact, i.e. LUT(x) == NN(x) everywhere.
#include <gtest/gtest.h>

#include <cmath>

#include "core/approx_net.h"
#include "core/transform.h"
#include "numerics/rng.h"

namespace nnlut {
namespace {

ApproxNet random_net(int hidden, Rng& rng, bool allow_dead = false) {
  ApproxNet net;
  net.n.resize(static_cast<std::size_t>(hidden));
  net.b.resize(static_cast<std::size_t>(hidden));
  net.m.resize(static_cast<std::size_t>(hidden));
  for (int i = 0; i < hidden; ++i) {
    const auto u = static_cast<std::size_t>(i);
    net.n[u] = rng.uniform(-2.0f, 2.0f);
    if (!allow_dead && std::abs(net.n[u]) < 0.05f) net.n[u] = 0.05f;
    net.b[u] = rng.uniform(-3.0f, 3.0f);
    net.m[u] = rng.uniform(-1.5f, 1.5f);
  }
  net.c = rng.uniform(-1.0f, 1.0f);
  return net;
}

double max_divergence(const ApproxNet& net, const PiecewiseLinear& lut,
                      float lo, float hi, int points) {
  double mx = 0.0;
  for (int i = 0; i <= points; ++i) {
    const float x = lo + (hi - lo) * static_cast<float>(i) / points;
    mx = std::max(mx, std::abs(static_cast<double>(net(x)) - lut(x)));
  }
  return mx;
}

// --- Parameterized equivalence sweep over (hidden size, seed). -------------

using Params = std::tuple<int, int>;
class TransformEquivalence : public ::testing::TestWithParam<Params> {};

TEST_P(TransformEquivalence, LutEqualsNetEverywhere) {
  const auto [hidden, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  const ApproxNet net = random_net(hidden, rng);
  const PiecewiseLinear lut = nn_to_lut(net);

  // Scale-aware tolerance: summation order differs between NN and LUT.
  float scale = std::abs(net.c);
  for (std::size_t i = 0; i < net.hidden_size(); ++i)
    scale += std::abs(net.m[i]) * (std::abs(net.n[i]) * 10.0f + std::abs(net.b[i]));
  const double tol = 1e-5 * std::max(1.0f, scale);

  EXPECT_LE(max_divergence(net, lut, -10.0f, 10.0f, 20000), tol);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TransformEquivalence,
    ::testing::Combine(::testing::Values(1, 2, 3, 7, 15, 31, 63),
                       ::testing::Values(1, 2, 3, 4, 5)));

// --- Structured cases. ------------------------------------------------------

TEST(Transform, SingleNeuronPositiveSlopeIsRelu) {
  ApproxNet net;
  net.n = {1.0f};
  net.b = {0.0f};
  net.m = {1.0f};
  const PiecewiseLinear lut = nn_to_lut(net);
  ASSERT_EQ(lut.entries(), 2u);
  EXPECT_EQ(lut(-2.0f), 0.0f);
  EXPECT_EQ(lut(3.0f), 3.0f);
}

TEST(Transform, NegativeWeightNeuronActiveOnLeft) {
  // relu(-x + 1): active for x < 1.
  ApproxNet net;
  net.n = {-1.0f};
  net.b = {1.0f};
  net.m = {2.0f};
  const PiecewiseLinear lut = nn_to_lut(net);
  ASSERT_EQ(lut.entries(), 2u);
  EXPECT_EQ(lut(0.0f), 2.0f);   // 2*relu(1) = 2
  EXPECT_EQ(lut(-1.0f), 4.0f);  // 2*relu(2) = 4
  EXPECT_EQ(lut(5.0f), 0.0f);
}

TEST(Transform, DeadNeuronContributesConstant) {
  ApproxNet net;
  net.n = {0.0f, 1.0f};  // first neuron has zero weight
  net.b = {2.0f, 0.0f};  // positive bias -> always active, constant 2*m0
  net.m = {3.0f, 1.0f};
  net.c = 1.0f;
  const PiecewiseLinear lut = nn_to_lut(net);
  ASSERT_EQ(lut.entries(), 2u);  // only one kink from the live neuron
  EXPECT_EQ(lut(-1.0f), 1.0f + 6.0f);
  EXPECT_EQ(lut(2.0f), 1.0f + 6.0f + 2.0f);
}

TEST(Transform, DeadNeuronNegativeBiasIgnored) {
  ApproxNet net;
  net.n = {0.0f};
  net.b = {-2.0f};  // never active
  net.m = {100.0f};
  net.c = 5.0f;
  const PiecewiseLinear lut = nn_to_lut(net);
  EXPECT_EQ(lut.entries(), 1u);
  EXPECT_EQ(lut(0.0f), 5.0f);
}

TEST(Transform, CoincidentKinksMerge) {
  // Two neurons with the same kink location x = 1.
  ApproxNet net;
  net.n = {1.0f, 2.0f};
  net.b = {-1.0f, -2.0f};
  net.m = {1.0f, 1.0f};
  const PiecewiseLinear lut = nn_to_lut(net);
  EXPECT_EQ(lut.entries(), 2u);
  EXPECT_EQ(lut(0.0f), 0.0f);
  EXPECT_NEAR(lut(2.0f), 1.0f + 2.0f, 1e-6f);  // relu(1) + relu(2)
}

TEST(Transform, SixteenEntryNetYieldsAtMostSixteenSegments) {
  Rng rng(77);
  const ApproxNet net = random_net(15, rng);
  const PiecewiseLinear lut = nn_to_lut(net);
  EXPECT_LE(lut.entries(), 16u);
  EXPECT_GE(lut.entries(), 2u);
}

TEST(Transform, BreakpointsMatchNeuronKinks) {
  ApproxNet net;
  net.n = {1.0f, 1.0f, 1.0f};
  net.b = {-1.0f, -2.0f, -3.0f};
  net.m = {1.0f, 1.0f, 1.0f};
  const PiecewiseLinear lut = nn_to_lut(net);
  ASSERT_EQ(lut.breakpoints().size(), 3u);
  EXPECT_FLOAT_EQ(lut.breakpoints()[0], 1.0f);
  EXPECT_FLOAT_EQ(lut.breakpoints()[1], 2.0f);
  EXPECT_FLOAT_EQ(lut.breakpoints()[2], 3.0f);
}

TEST(Transform, EmptyNetIsConstant) {
  ApproxNet net;
  net.c = 3.5f;
  const PiecewiseLinear lut = nn_to_lut(net);
  EXPECT_EQ(lut.entries(), 1u);
  EXPECT_EQ(lut(123.0f), 3.5f);
}

TEST(Transform, MergeEpsCollapsesNearbyKinks) {
  ApproxNet net;
  net.n = {1.0f, 1.0f};
  net.b = {-1.0f, -1.0000001f};
  net.m = {1.0f, 1.0f};
  const PiecewiseLinear strict = nn_to_lut(net, 0.0f);
  const PiecewiseLinear merged = nn_to_lut(net, 1e-3f);
  EXPECT_LE(merged.entries(), strict.entries());
  // Merged LUT still tracks the net away from the collapsed kink.
  EXPECT_NEAR(merged(5.0f), net(5.0f), 1e-4f);
}

}  // namespace
}  // namespace nnlut
