// Fixture: wall-clock reads outside the serving/stats layer. Must fire
// rule no-wallclock.
#include <chrono>
#include <ctime>

long stamp() {
  const auto t0 = std::chrono::steady_clock::now();
  const auto wall = std::chrono::system_clock::now();
  (void)wall;
  return t0.time_since_epoch().count() + time(nullptr);
}
