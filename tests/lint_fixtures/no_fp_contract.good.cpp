// Fixture: plain arithmetic with no contraction pragma; the project-wide
// -ffp-contract=off (CMakeLists.txt) governs.
float mac(float a, float b, float c) { return a * b + c; }
