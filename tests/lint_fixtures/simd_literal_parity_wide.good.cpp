// Fixture: a wide-tier TU layered over a width-specific common header whose
// own literals all come from the paired scalar detail header (1.5f) or the
// manifest allowlist (0.5f) — both tiers necessarily agree.
#include "simd_literal_parity_detail.h"
#include "simd_literal_parity_wide_common.h"

float wide_tier_eval(float x) { return x * 0.5f + kSharedClamp * 1.5f; }
