// Fixture: heap traffic in a file the manifest tags hot_path. Must fire
// no-hot-alloc.
#include <vector>

float sum_rows(const float* rows, int n) {
  std::vector<float> copy;
  for (int i = 0; i < n; ++i) copy.push_back(rows[i]);
  float* scratch = new float[16];
  float s = 0.0f;
  for (float v : copy) s += v;
  delete[] scratch;
  return s;
}
