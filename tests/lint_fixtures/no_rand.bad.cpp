// Fixture: nondeterministic randomness sources. Each line below must fire
// rule no-rand.
#include <cstdlib>
#include <random>

int noisy() {
  std::random_device rd;          // entropy differs per run
  std::srand(42);                 // hidden global state
  return rd() + rand();           // sequence depends on call order
}
