// Fixture: the project way — a fixed-seed generator (numerics/rng.h style)
// is deterministic and lint-clean.
#include <random>

int reproducible() {
  std::mt19937_64 rng{0x5eedc0de12345678ull};
  std::uniform_int_distribution<int> dist(0, 9);
  return dist(rng);
}
