// Fixture: a wide-tier TU whose float literal (3.25f) matches its
// width-specific common header but is absent from the paired scalar detail
// header and the allowlist — the scalar tier cannot agree on it, so
// simd-literal-parity must fire.
#include "simd_literal_parity_detail.h"
#include "simd_literal_parity_wide_common.h"

float wide_tier_eval(float x) { return x * 3.25f + kSharedClamp; }
