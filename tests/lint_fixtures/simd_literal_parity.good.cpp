// Fixture: every literal comes from the shared header (1.5f) or the
// manifest allowlist (0.5f) — both tiers necessarily agree.
#include "simd_literal_parity_detail.h"

float tier_eval(float x) { return x * 0.5f + kSharedClamp * 1.5f; }
