// Fixture: raw std synchronization primitives are invisible to clang's
// -Wthread-safety analysis. Must fire raw-sync-primitive.
#include <mutex>

class Counter {
 public:
  void bump() {
    std::lock_guard<std::mutex> lk(mu_);
    ++n_;
  }

 private:
  std::mutex mu_;
  long n_ = 0;
};
