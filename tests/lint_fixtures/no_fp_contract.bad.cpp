// Fixture: locally re-enabling FP contraction lets the compiler fuse a*b+c
// into an FMA, changing bits between SIMD tiers. Must fire no-fp-contract.
#pragma STDC FP_CONTRACT ON

float mac(float a, float b, float c) { return a * b + c; }
