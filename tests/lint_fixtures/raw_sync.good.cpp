// Fixture: the annotated wrappers from core/thread_annotations.h carry the
// capability attributes the analysis needs. (Include path is illustrative —
// the lint is textual.)
#include "core/thread_annotations.h"

class Counter {
 public:
  void bump() {
    nnlut::MutexLock lk(mu_);
    ++n_;
  }

 private:
  nnlut::Mutex mu_;
  long n_ NNLUT_GUARDED_BY(mu_) = 0;
};
