// Fixture: ordered iteration is fine, and a proven-order-independent sweep
// can opt out with an allow marker.
#include <map>
#include <unordered_map>

int total() {
  std::map<int, int> ordered{{1, 2}, {3, 4}};
  int sum = 0;
  for (const auto& kv : ordered) sum += kv.second;  // deterministic order

  std::unordered_map<int, int> counters{{1, 2}};
  // Sum is commutative — order cannot leak into the result.
  // lint:allow unordered-iter
  for (const auto& kv : counters) sum += kv.second;
  return sum;
}
