// Support header for the simd_literal_parity fixtures: the "shared detail
// blocks" both tier TUs must draw their constants from.
#pragma once

constexpr float kSharedClamp = 1.5f;
