// Fixture: a float literal private to one SIMD-tier TU (2.75f is neither in
// simd_literal_parity_detail.h nor allowlisted). Must fire
// simd-literal-parity.
#include "simd_literal_parity_detail.h"

float tier_eval(float x) { return x * 2.75f + kSharedClamp; }
