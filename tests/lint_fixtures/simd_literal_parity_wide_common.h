// Support header for the simd_literal_parity_wide fixtures: models the
// width-specific *_common.h headers (avx2/avx512) that sit between a wide
// tier TU and the scalar detail header — constants here are NOT the shared
// scalar reference, so drawing a literal from this file alone must still
// fire the rule on a TU paired with the scalar detail header.
#pragma once

constexpr float kWideOnlyBias = 3.25f;
