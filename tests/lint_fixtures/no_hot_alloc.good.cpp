// Fixture: hot-path code stages through fixed stack blocks (the
// lut_kernel_simd_detail.h idiom) — no heap traffic to flag.
float sum_rows(const float* rows, int n) {
  float block[512];
  float s = 0.0f;
  for (int i = 0; i < n; ++i) {
    block[i & 511] = rows[i];
    s += block[i & 511];
  }
  return s;
}
