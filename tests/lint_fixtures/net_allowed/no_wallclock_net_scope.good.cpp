// Fixture: no-wallclock net-layer scoping, GOOD half. Identical deadline
// arithmetic to no_wallclock_net_scope.bad.cpp, but this file lives under
// net_allowed/ — a `wallclock_allowed` prefix in the fixture manifest
// (standing in for src/net/ in the real one, where socket timeouts are
// inherently wall-clock) — so the lint must stay silent.
#include <chrono>
#include <cstdint>

std::int64_t recv_deadline_us_inside_net(
    std::chrono::steady_clock::time_point deadline) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             deadline - std::chrono::steady_clock::now())
      .count();
}
