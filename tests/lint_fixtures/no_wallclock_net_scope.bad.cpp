// Fixture: no-wallclock net-layer scoping, BAD half. Deadline arithmetic of
// the kind the TCP client uses (SO_RCVTIMEO re-arming) read OUTSIDE every
// `wallclock_allowed` prefix, so the clock read must fire. Its good twin
// (net_allowed/no_wallclock_net_scope.good.cpp) holds the same code inside
// the net_allowed/ prefix — standing in for src/net/ in the real manifest —
// and must be clean.
#include <chrono>
#include <cstdint>

std::int64_t recv_deadline_us_outside_net(
    std::chrono::steady_clock::time_point deadline) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             deadline - std::chrono::steady_clock::now())
      .count();
}
