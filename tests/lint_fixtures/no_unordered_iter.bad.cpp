// Fixture: iterating a std::unordered_* container. Visit order is
// implementation-defined; must fire rule no-unordered-iter.
#include <unordered_map>
#include <vector>

std::vector<int> keys(const std::unordered_map<int, int>& unused) {
  std::unordered_map<int, int> histogram;
  histogram[1] = 2;
  std::vector<int> out;
  for (const auto& kv : histogram) out.push_back(kv.first);
  for (auto it = histogram.begin(); it != histogram.end(); ++it) (void)it;
  return out;
}
