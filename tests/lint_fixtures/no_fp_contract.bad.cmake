# Fixture: fast-math flags re-associate and fuse FP ops — bit-identity across
# tiers is gone. Must fire no-fp-contract (and the missing -ffp-contract=off
# is a second count of the same rule).
add_compile_options(-O3 -ffast-math)
