// Fixture: no-wallclock manifest scoping, GOOD half. Identical clock read
// to no_wallclock_scope.bad.cpp, but this file lives under obs_allowed/ —
// a `wallclock_allowed` prefix in the fixture manifest (standing in for
// src/obs/ in the real one) — so the lint must stay silent.
#include <chrono>
#include <cstdint>

std::uint64_t trace_now_ns_inside_obs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
