// Fixture: no-wallclock manifest scoping, BAD half. This file sits OUTSIDE
// every `wallclock_allowed` prefix of the fixture manifest, so the clock
// read below must fire. Its good twin (obs_allowed/no_wallclock_scope.good
// .cpp) contains the same read inside an allowlisted directory and must be
// clean — together they pin the prefix-allowlist semantics the real
// manifest relies on for src/obs/.
#include <chrono>
#include <cstdint>

std::uint64_t trace_now_ns_outside_obs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
