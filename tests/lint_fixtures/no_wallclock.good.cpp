// Fixture: durations and time_point types are fine — only reading a clock
// introduces nondeterminism.
#include <chrono>

std::chrono::microseconds budget() {
  using namespace std::chrono_literals;
  const std::chrono::steady_clock::time_point epoch{};  // type use, no read
  (void)epoch;
  return 2000us;
}
