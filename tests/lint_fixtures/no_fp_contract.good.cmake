# Fixture: the required project-wide contraction setting is present.
add_compile_options(-O2 -ffp-contract=off)
