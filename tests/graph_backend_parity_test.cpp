// Cross-check between the two LUT execution paths: the training graph with
// LUTs installed (nn/approx_training via NormSlot/EncoderLayer) must compute
// the same forward pass as the inference engine with the corresponding
// backend selection. This guards against the two implementations drifting.
#include <gtest/gtest.h>

#include "core/function_library.h"
#include "eval/pipeline.h"

namespace nnlut {
namespace {

using transformer::ApproxSelection;
using transformer::BatchInput;
using transformer::HeadKind;
using transformer::InferenceModel;
using transformer::LutNonlinearities;
using transformer::LutSet;
using transformer::ModelConfig;
using transformer::TaskModel;

ModelConfig tiny() {
  ModelConfig c = ModelConfig::roberta_like();
  c.vocab = 32;
  c.hidden = 16;
  c.layers = 2;
  c.heads = 2;
  c.ffn = 32;
  c.max_seq = 12;
  return c;
}

BatchInput random_batch(const ModelConfig& cfg, std::size_t batch,
                        std::size_t seq, Rng& rng) {
  BatchInput in;
  in.batch = batch;
  in.seq = seq;
  in.token_ids.resize(batch * seq);
  in.type_ids.assign(batch * seq, 0);
  for (int& t : in.token_ids)
    t = rng.uniform_int(0, static_cast<int>(cfg.vocab) - 1);
  return in;
}

TEST(GraphBackendParity, LutGeluMatchesGeluOnlyBackend) {
  Rng rng(11);
  TaskModel m(tiny(), HeadKind::kClassify, 2, rng);
  const BatchInput in = random_batch(m.config(), 3, 8, rng);

  const FittedLut gelu_fit = fit_lut(TargetFn::kGelu, 16, FitPreset::kFast, 41);

  // Training graph with the GELU LUT installed.
  for (auto& layer : m.encoder.layers)
    layer.install_lut_activation(&gelu_fit.lut);
  const Tensor graph_logits = m.forward(in);
  for (auto& layer : m.encoder.layers) layer.install_lut_activation(nullptr);

  // Inference engine with the gelu-only LUT backend using the same table.
  const NnlutBundle b = train_bundle(16, FitPreset::kFast, 41);
  LutSet luts{gelu_fit.lut, b.exp.lut, b.reciprocal.lut, b.rsqrt.lut};
  LutNonlinearities::Options opt;
  opt.select = ApproxSelection::gelu_only();
  auto backend = make_lut_backend(luts, LutPrecision::kFp32, opt);
  InferenceModel infer(m, *backend);
  const Tensor infer_logits = infer.logits(in);

  ASSERT_EQ(graph_logits.size(), infer_logits.size());
  for (std::size_t i = 0; i < graph_logits.size(); ++i)
    EXPECT_NEAR(graph_logits[i], infer_logits[i], 1e-4f) << i;
}

TEST(GraphBackendParity, LutLayerNormMatchesLayerNormOnlyBackend) {
  Rng rng(12);
  TaskModel m(tiny(), HeadKind::kClassify, 2, rng);
  const BatchInput in = random_batch(m.config(), 3, 8, rng);

  const FittedLut rsqrt_fit =
      fit_lut(TargetFn::kRsqrt, 16, FitPreset::kFast, 42);

  for (auto& layer : m.encoder.layers) {
    layer.norm1.install_lut_rsqrt(&rsqrt_fit.lut);
    layer.norm2.install_lut_rsqrt(&rsqrt_fit.lut);
  }
  m.encoder.emb_norm.install_lut_rsqrt(&rsqrt_fit.lut);
  const Tensor graph_logits = m.forward(in);
  for (auto& layer : m.encoder.layers) {
    layer.norm1.install_lut_rsqrt(nullptr);
    layer.norm2.install_lut_rsqrt(nullptr);
  }
  m.encoder.emb_norm.install_lut_rsqrt(nullptr);

  const NnlutBundle b = train_bundle(16, FitPreset::kFast, 42);
  LutSet luts{b.gelu.lut, b.exp.lut, b.reciprocal.lut, rsqrt_fit.lut};
  LutNonlinearities::Options opt;
  opt.select = ApproxSelection::layernorm_only();
  auto backend = make_lut_backend(luts, LutPrecision::kFp32, opt);
  InferenceModel infer(m, *backend);
  const Tensor infer_logits = infer.logits(in);

  for (std::size_t i = 0; i < graph_logits.size(); ++i)
    EXPECT_NEAR(graph_logits[i], infer_logits[i], 1e-3f) << i;
}

TEST(GraphBackendParity, InstallingNullRestoresExact) {
  Rng rng(13);
  TaskModel m(tiny(), HeadKind::kClassify, 2, rng);
  const BatchInput in = random_batch(m.config(), 2, 8, rng);
  const Tensor before = m.forward(in);

  const FittedLut fit = fit_lut(TargetFn::kGelu, 16, FitPreset::kFast, 43);
  for (auto& layer : m.encoder.layers)
    layer.install_lut_activation(&fit.lut);
  (void)m.forward(in);
  for (auto& layer : m.encoder.layers) layer.install_lut_activation(nullptr);

  const Tensor after = m.forward(in);
  for (std::size_t i = 0; i < before.size(); ++i)
    EXPECT_EQ(before[i], after[i]);
}

}  // namespace
}  // namespace nnlut
