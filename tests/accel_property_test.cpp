// Property tests of the cycle simulator: scaling laws that must hold for any
// sane accelerator model, independent of the calibrated constants.
#include <gtest/gtest.h>

#include "accel/simulator.h"

namespace nnlut::accel {
namespace {

AcceleratorConfig base_cfg() { return {}; }

TEST(SimulatorScaling, DoubleEnginesHalvesMatmul) {
  const Op mm = Op::matmul("m", 256, 768, 768);
  AcceleratorConfig one = base_cfg();
  AcceleratorConfig two = base_cfg();
  two.engines = 4;  // 2 -> 4
  const CycleSimulator s1(one, nnlut_sfu_timing());
  const CycleSimulator s2(two, nnlut_sfu_timing());
  EXPECT_NEAR(s1.op_cycles(mm) / s2.op_cycles(mm), 2.0, 0.01);
}

TEST(SimulatorScaling, DoubleLanesHalvesSfuOps) {
  const Op g = Op::elementwise(OpKind::kGelu, "g", 128, 3072);
  AcceleratorConfig narrow = base_cfg();
  AcceleratorConfig wide = base_cfg();
  wide.sfu_lanes = 32;
  const CycleSimulator s1(narrow, ibert_sfu_timing());
  const CycleSimulator s2(wide, ibert_sfu_timing());
  EXPECT_NEAR(s1.op_cycles(g) / s2.op_cycles(g), 2.0, 0.05);
}

TEST(SimulatorScaling, MatmulLinearInEveryDim) {
  const CycleSimulator sim(base_cfg(), nnlut_sfu_timing());
  const double c1 = sim.op_cycles(Op::matmul("a", 64, 768, 768));
  const double c2 = sim.op_cycles(Op::matmul("b", 128, 768, 768));
  EXPECT_NEAR(c2 / c1, 2.0, 0.01);
  const double c3 = sim.op_cycles(Op::matmul("c", 64, 1536, 768));
  EXPECT_NEAR(c3 / c1, 2.0, 0.01);
}

TEST(SimulatorScaling, SoftmaxQuadraticInSeq) {
  const CycleSimulator sim(base_cfg(), nnlut_sfu_timing());
  const double c1 =
      sim.op_cycles(Op::elementwise(OpKind::kSoftmax, "s", 12 * 128, 128));
  const double c2 =
      sim.op_cycles(Op::elementwise(OpKind::kSoftmax, "s", 12 * 256, 256));
  EXPECT_NEAR(c2 / c1, 4.0, 0.1);  // rows and row length both double
}

TEST(SimulatorScaling, TotalCyclesMonotoneInSeq) {
  const BertShape sh = BertShape::roberta_base();
  const AcceleratorConfig cfg = base_cfg();
  double prev = 0.0;
  for (std::size_t s : {16u, 32u, 64u, 128u, 256u, 512u}) {
    const SystemComparison c = compare_at_seq(sh, s, cfg);
    EXPECT_GT(c.nnlut.total(), prev) << s;
    prev = c.nnlut.total();
  }
}

TEST(SimulatorScaling, UtilizationBoundedByPeak) {
  // MAC cycles can never beat the peak-throughput bound.
  const BertShape sh = BertShape::roberta_base();
  const AcceleratorConfig cfg = base_cfg();
  for (std::size_t s : {16u, 128u, 1024u}) {
    const auto ops = build_roberta_ops(sh, s);
    const CycleSimulator sim(cfg, nnlut_sfu_timing());
    const Breakdown b = sim.run(ops);
    const double peak = static_cast<double>(cfg.engines) *
                        cfg.macs_per_engine_per_cycle;
    EXPECT_GE(b.matmul, total_macs(ops) / peak - 1.0) << s;
  }
}

TEST(SimulatorScaling, SpeedupBoundedByAmdahl) {
  // NN-LUT only accelerates the non-matmul share; the speedup can never
  // exceed 1 / matmul-share of the I-BERT run.
  const BertShape sh = BertShape::roberta_base();
  const AcceleratorConfig cfg = base_cfg();
  for (std::size_t s : {16u, 256u, 1024u}) {
    const SystemComparison c = compare_at_seq(sh, s, cfg);
    const double matmul_share = c.ibert.matmul / c.ibert.total();
    EXPECT_LT(c.speedup, 1.0 / matmul_share) << s;
  }
}

TEST(SfuTimings, IbertSlowerOrEqualEverywhere) {
  const SfuTiming ib = ibert_sfu_timing();
  const SfuTiming nn = nnlut_sfu_timing();
  EXPECT_GE(ib.gelu_ii, nn.gelu_ii);
  EXPECT_GE(ib.exp_ii, nn.exp_ii);
  EXPECT_GE(ib.softmax_scale_ii, nn.softmax_scale_ii);
  EXPECT_GE(ib.recip_per_row, nn.recip_per_row);
  EXPECT_GE(ib.norm_scale_ii, nn.norm_scale_ii);
  EXPECT_GE(ib.rsqrt_per_row, nn.rsqrt_per_row);
  // The shared resources are identical.
  EXPECT_EQ(ib.reduce_ii, nn.reduce_ii);
  EXPECT_EQ(ib.etc_ii, nn.etc_ii);
}

TEST(Workload, EtcOpsPresentButSmall) {
  const auto ops = build_roberta_ops(BertShape::roberta_base(), 128);
  const CycleSimulator sim(AcceleratorConfig{}, nnlut_sfu_timing());
  const Breakdown b = sim.run(ops);
  EXPECT_GT(b.etc, 0.0);
  EXPECT_LT(b.percent(b.etc), 3.0);  // paper: 0.3-1.2%
}

}  // namespace
}  // namespace nnlut::accel
