// Determinism contract of the parallel runtime: the thread pool uses fixed
// static partitioning over independent rows, so InferenceModel::logits must
// be BIT-identical for any pool size, for every backend. Plus regression
// tests for the integer-kernel edge cases a threaded serving loop would turn
// into crashes (coarse-scale i_exp, out-of-range embedding ids, non-finite
// rows through llround).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "approx/linear_lut.h"
#include "ibert/ibert_kernels.h"
#include "numerics/math.h"
#include "runtime/thread_pool.h"
#include "transformer/infer.h"

namespace nnlut::transformer {
namespace {

ModelConfig tiny() {
  ModelConfig c = ModelConfig::roberta_like();
  c.vocab = 32;
  c.hidden = 16;
  c.layers = 2;
  c.heads = 2;
  c.ffn = 32;
  c.max_seq = 12;
  return c;
}

BatchInput random_batch(const ModelConfig& cfg, std::size_t batch,
                        std::size_t seq, Rng& rng) {
  BatchInput in;
  in.batch = batch;
  in.seq = seq;
  in.token_ids.resize(batch * seq);
  in.type_ids.assign(batch * seq, 0);
  for (int& t : in.token_ids)
    t = rng.uniform_int(0, static_cast<int>(cfg.vocab) - 1);
  return in;
}

LutSet tiny_luts() {
  return {fit_linear_lut(gelu_exact, kGeluRange, 32),
          fit_linear_lut(exp_exact, {-16.0f, 0.0f}, 32),
          fit_fixed_breakpoint_lut(reciprocal_exact, {1.0f, 64.0f}, 32,
                                   BreakpointMode::kExponential),
          fit_fixed_breakpoint_lut(rsqrt_exact, kRsqrtRange, 32,
                                   BreakpointMode::kExponential)};
}

Tensor logits_with_pool(const TaskModel& m, NonlinearitySet& nl,
                        std::size_t threads, const BatchInput& in,
                        MatmulMode mode = MatmulMode::kFp32) {
  runtime::set_runtime_config({threads});
  InferenceModel infer(m, nl, mode);
  Tensor out = infer.logits(in);
  runtime::set_runtime_config({});  // restore default
  return out;
}

void expect_bit_identical(const Tensor& a, const Tensor& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]) << i;
}

TEST(ThreadParity, ExactBackend) {
  Rng rng(11);
  TaskModel m(tiny(), HeadKind::kClassify, 2, rng);
  const BatchInput in = random_batch(m.config(), 4, 12, rng);
  ExactNonlinearities exact(m.config().act);
  const Tensor l1 = logits_with_pool(m, exact, 1, in);
  expect_bit_identical(l1, logits_with_pool(m, exact, 3, in));
  expect_bit_identical(l1, logits_with_pool(m, exact, 4, in));
}

class LutThreadParity : public ::testing::TestWithParam<LutPrecision> {};

TEST_P(LutThreadParity, LogitsMatchAcrossPoolSizes) {
  Rng rng(12);
  TaskModel m(tiny(), HeadKind::kClassify, 2, rng);
  const BatchInput in = random_batch(m.config(), 4, 12, rng);
  LutNonlinearities::Options opt;
  opt.select = ApproxSelection::all();
  auto backend = make_lut_backend(tiny_luts(), GetParam(), opt);
  const Tensor l1 = logits_with_pool(m, *backend, 1, in);
  expect_bit_identical(l1, logits_with_pool(m, *backend, 4, in));
}

INSTANTIATE_TEST_SUITE_P(Precisions, LutThreadParity,
                         ::testing::Values(LutPrecision::kFp32,
                                           LutPrecision::kFp16,
                                           LutPrecision::kInt32));

TEST(ThreadParity, IBertBackend) {
  Rng rng(13);
  TaskModel m(tiny(), HeadKind::kClassify, 2, rng);
  const BatchInput in = random_batch(m.config(), 4, 12, rng);
  IBertNonlinearities ibert_nl(m.config().act);
  const Tensor l1 = logits_with_pool(m, ibert_nl, 1, in);
  expect_bit_identical(l1, logits_with_pool(m, ibert_nl, 4, in));
}

TEST(ThreadParity, Int8MatmulMode) {
  Rng rng(14);
  TaskModel m(tiny(), HeadKind::kClassify, 2, rng);
  const BatchInput in = random_batch(m.config(), 3, 12, rng);
  ExactNonlinearities exact(m.config().act);
  const Tensor l1 = logits_with_pool(m, exact, 1, in, MatmulMode::kInt8);
  expect_bit_identical(l1, logits_with_pool(m, exact, 4, in, MatmulMode::kInt8));
}

// ------------------------------------------------------- parallel_for -----

TEST(ParallelFor, CoversRangeExactlyOnce) {
  runtime::set_runtime_config({4});
  std::vector<std::atomic<int>> hits(1000);
  runtime::parallel_for(0, hits.size(), 1, [&](std::size_t i0, std::size_t i1) {
    for (std::size_t i = i0; i < i1; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1);
  runtime::set_runtime_config({});
}

TEST(ParallelFor, GrainCapsShardCount) {
  runtime::set_runtime_config({8});
  // 10 items at grain 10 must run as one inline shard.
  int calls = 0;
  runtime::parallel_for(0, 10, 10, [&](std::size_t i0, std::size_t i1) {
    ++calls;
    EXPECT_EQ(i0, 0u);
    EXPECT_EQ(i1, 10u);
  });
  EXPECT_EQ(calls, 1);
  runtime::set_runtime_config({});
}

TEST(ParallelFor, WorkerShardExceptionPropagatesAndPoolSurvives) {
  runtime::set_runtime_config({4});
  // 4 shards of 1 item each: the shard starting at 2 runs on a worker lane.
  EXPECT_THROW(runtime::parallel_for(0, 4, 1,
                                     [](std::size_t i0, std::size_t) {
                                       if (i0 == 2)
                                         throw std::runtime_error("boom");
                                     }),
               std::runtime_error);
  // The pool must drain the failed job and stay usable.
  std::atomic<int> n{0};
  runtime::parallel_for(0, 100, 1, [&](std::size_t i0, std::size_t i1) {
    n.fetch_add(static_cast<int>(i1 - i0));
  });
  EXPECT_EQ(n.load(), 100);
  runtime::set_runtime_config({});
}

TEST(ParallelFor, CallerShardExceptionPropagatesAndPoolSurvives) {
  runtime::set_runtime_config({4});
  EXPECT_THROW(runtime::parallel_for(0, 4, 1,
                                     [](std::size_t i0, std::size_t) {
                                       if (i0 == 0)  // lane 0 = caller
                                         throw std::runtime_error("boom");
                                     }),
               std::runtime_error);
  std::atomic<int> n{0};
  runtime::parallel_for(0, 64, 1, [&](std::size_t i0, std::size_t i1) {
    n.fetch_add(static_cast<int>(i1 - i0));
  });
  EXPECT_EQ(n.load(), 64);
  runtime::set_runtime_config({});
}

TEST(ParallelFor, MorePoolLanesThanHardwareStillCorrect) {
  runtime::set_runtime_config({16});
  std::atomic<long> sum{0};
  runtime::parallel_for(1, 101, 1, [&](std::size_t i0, std::size_t i1) {
    long local = 0;
    for (std::size_t i = i0; i < i1; ++i) local += static_cast<long>(i);
    sum.fetch_add(local);
  });
  EXPECT_EQ(sum.load(), 5050);
  runtime::set_runtime_config({});
}

TEST(ParallelFor, ConcurrentOrchestratorsStayCorrect) {
  // Two threads driving parallel_for on the same pool (two serving loops,
  // or a server plus a direct caller): the pool admits one orchestrator at
  // a time — FIFO by arrival ticket — and the other waits its turn; both
  // must compute correct results, with no cross-talk on the shared job
  // state.
  runtime::set_runtime_config({4});
  std::thread second([] {
    for (int iter = 0; iter < 100; ++iter) {
      std::atomic<long> sum{0};
      runtime::parallel_for(1, 101, 1, [&](std::size_t i0, std::size_t i1) {
        long local = 0;
        for (std::size_t i = i0; i < i1; ++i) local += static_cast<long>(i);
        sum.fetch_add(local);
      });
      ASSERT_EQ(sum.load(), 5050);
    }
  });
  for (int iter = 0; iter < 100; ++iter) {
    std::atomic<long> sum{0};
    runtime::parallel_for(1, 201, 1, [&](std::size_t i0, std::size_t i1) {
      long local = 0;
      for (std::size_t i = i0; i < i1; ++i) local += static_cast<long>(i);
      sum.fetch_add(local);
    });
    ASSERT_EQ(sum.load(), 20100);
  }
  second.join();
  runtime::set_runtime_config({});
}

TEST(ParallelFor, ManyOrchestratorsShareThePoolFairly) {
  // N scheduler-like threads (a multi-model Engine runs one per slot)
  // orchestrating the same pool concurrently: FIFO ticket admission means
  // every orchestrator keeps making progress — none can be starved into
  // waiting forever while the others loop — and every job computes the
  // serial answer. Completion of all N * kRounds jobs IS the fairness
  // assertion: a starved orchestrator would hang the test.
  runtime::set_runtime_config({3});
  constexpr int kOrchestrators = 4, kRounds = 50;
  std::atomic<int> jobs_done{0};
  std::vector<std::thread> orchestrators;
  for (int o = 0; o < kOrchestrators; ++o) {
    orchestrators.emplace_back([&, o] {
      const std::size_t n = 50 + static_cast<std::size_t>(o) * 10;
      const long expected =
          static_cast<long>(n * (n + 1) / 2);  // sum 1..n
      for (int round = 0; round < kRounds; ++round) {
        std::atomic<long> sum{0};
        runtime::parallel_for(1, n + 1, 1, [&](std::size_t i0, std::size_t i1) {
          long local = 0;
          for (std::size_t i = i0; i < i1; ++i) local += static_cast<long>(i);
          sum.fetch_add(local);
        });
        ASSERT_EQ(sum.load(), expected) << "orchestrator " << o;
        jobs_done.fetch_add(1);
      }
    });
  }
  for (auto& t : orchestrators) t.join();
  EXPECT_EQ(jobs_done.load(), kOrchestrators * kRounds);
  runtime::set_runtime_config({});
}

TEST(ParallelFor, OrchestratorExceptionReleasesTheWorkers) {
  // A shard failure must pass the workers to the next ticket holder — a
  // throwing job that held its turn forever would deadlock every later
  // orchestrator (and this test).
  runtime::set_runtime_config({3});
  for (int round = 0; round < 5; ++round) {
    EXPECT_THROW(
        runtime::parallel_for(0, 30, 1,
                              [&](std::size_t i0, std::size_t) {
                                if (i0 == 0) throw std::runtime_error("boom");
                              }),
        std::runtime_error);
    // The pool must still be usable by the next job.
    std::atomic<long> sum{0};
    runtime::parallel_for(1, 11, 1, [&](std::size_t i0, std::size_t i1) {
      long local = 0;
      for (std::size_t i = i0; i < i1; ++i) local += static_cast<long>(i);
      sum.fetch_add(local);
    });
    ASSERT_EQ(sum.load(), 55);
  }
  runtime::set_runtime_config({});
}

TEST(ParallelFor, ReconfigureWhileKernelsInFlightIsSafe) {
  // Regression for the serving subsystem: a configurer thread resizing the
  // pool (Server construction plugs ServeConfig::threads into RuntimeConfig)
  // while another thread has kernels in flight. Before acquire_pool()
  // returned a shared handle, set_runtime_config destroyed the pool out from
  // under the running parallel_for. TSan in CI guards the handoff.
  std::atomic<bool> stop{false};
  std::thread configurer([&] {
    std::size_t n = 2;
    while (!stop.load()) {
      runtime::set_runtime_config({n});
      n = (n == 2) ? 4 : 2;
    }
  });
  for (int iter = 0; iter < 200; ++iter) {
    std::atomic<long> sum{0};
    runtime::parallel_for(1, 101, 1, [&](std::size_t i0, std::size_t i1) {
      long local = 0;
      for (std::size_t i = i0; i < i1; ++i) local += static_cast<long>(i);
      sum.fetch_add(local);
    });
    ASSERT_EQ(sum.load(), 5050);
  }
  stop.store(true);
  configurer.join();
  runtime::set_runtime_config({});
}

// ------------------------------------------------ bugfix regressions ------

TEST(IBertRegressions, IExpSurvivesCoarseScale) {
  // s > ln2 makes floor(ln2/s) == 0; before the guard this divided by zero
  // in release builds. The clamp keeps the result finite and in (0, 1].
  const ibert::QValue out = ibert::i_exp({-5, 1.0f});
  EXPECT_TRUE(std::isfinite(out.value()));
  EXPECT_GE(out.value(), 0.0f);
  EXPECT_LE(out.value(), 1.0f);
}

TEST(IBertRegressions, SoftmaxRowSurvivesCoarseScale) {
  // Magnitudes around 1e6 give s = 1e6 / 32767 ≈ 30.5 > ln2.
  std::vector<float> row = {-1e6f, 0.0f, 5e5f, 1e6f};
  ibert::softmax_row(row);
  float sum = 0.0f;
  for (float v : row) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_GE(v, 0.0f);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0f, 0.1f);
}

TEST(IBertRegressions, NonFiniteRowsDoNotCrash) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float inf = std::numeric_limits<float>::infinity();

  std::vector<float> sm = {nan, 0.0f, 1.0f, inf, -inf, 2.0f};
  ibert::softmax_row(sm);
  for (float v : sm) EXPECT_TRUE(std::isfinite(v));

  std::vector<float> ge = {nan, inf, -inf, 0.5f, -0.5f};
  ibert::gelu_row(ge);
  for (float v : ge) EXPECT_TRUE(std::isfinite(v));

  std::vector<float> x = {nan, 1.0f, inf, -2.0f, 0.0f, 3.0f};
  std::vector<float> y(x.size());
  ibert::layernorm_row(x, y, {}, {});
  for (float v : y) EXPECT_TRUE(std::isfinite(v));
}

TEST(IBertRegressions, TinyMagnitudeRowsStayDefined) {
  // Magnitudes far below the 2^-6 scale floor: the integer pipelines must
  // stay inside int64 (the ASan+UBSan CI job enforces no overflow) and
  // produce finite outputs.
  std::vector<float> sm = {1e-26f, 2e-26f, -3e-26f, 0.0f};
  ibert::softmax_row(sm);
  float sum = 0.0f;
  for (float v : sm) {
    EXPECT_TRUE(std::isfinite(v));
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0f, 0.1f);

  std::vector<float> ge = {1e-30f, -1e-20f, 5e-25f};
  ibert::gelu_row(ge);
  for (float v : ge) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_NEAR(v, 0.0f, 1e-3f);  // gelu of ~0 is ~0
  }

  std::vector<float> x = {1e-28f, -2e-28f, 3e-28f, -4e-28f};
  std::vector<float> y(x.size());
  ibert::layernorm_row(x, y, {}, {});
  for (float v : y) EXPECT_TRUE(std::isfinite(v));
}

TEST(IBertRegressions, BlockKernelsMatchRowKernels) {
  Rng rng(21);
  const std::size_t nrows = 7, ncols = 33;
  std::vector<float> data(nrows * ncols);
  for (float& v : data) v = rng.uniform(-8.0f, 8.0f);

  std::vector<float> by_row = data;
  for (std::size_t r = 0; r < nrows; ++r)
    ibert::softmax_row(std::span<float>(by_row).subspan(r * ncols, ncols));
  std::vector<float> by_block = data;
  ibert::softmax_rows(by_block, nrows, ncols);
  for (std::size_t i = 0; i < data.size(); ++i)
    EXPECT_EQ(by_row[i], by_block[i]) << i;

  std::vector<float> gamma(ncols, 1.2f), beta(ncols, -0.1f);
  std::vector<float> yr(data.size()), yb(data.size());
  for (std::size_t r = 0; r < nrows; ++r)
    ibert::layernorm_row(std::span<const float>(data).subspan(r * ncols, ncols),
                         std::span<float>(yr).subspan(r * ncols, ncols), gamma,
                         beta);
  ibert::layernorm_rows(data, yb, nrows, ncols, gamma, beta);
  for (std::size_t i = 0; i < data.size(); ++i) EXPECT_EQ(yr[i], yb[i]) << i;
}

TEST(EncodeValidation, OutOfRangeTokenIdThrows) {
  Rng rng(15);
  TaskModel m(tiny(), HeadKind::kClassify, 2, rng);
  ExactNonlinearities exact(m.config().act);
  InferenceModel infer(m, exact);

  BatchInput in = random_batch(m.config(), 1, 8, rng);
  in.token_ids[3] = static_cast<int>(m.config().vocab);  // one past the end
  EXPECT_THROW(infer.logits(in), std::out_of_range);

  in.token_ids[3] = -1;
  EXPECT_THROW(infer.logits(in), std::out_of_range);
}

TEST(EncodeValidation, OutOfRangeTypeIdThrows) {
  Rng rng(16);
  TaskModel m(tiny(), HeadKind::kClassify, 2, rng);
  ExactNonlinearities exact(m.config().act);
  InferenceModel infer(m, exact);

  BatchInput in = random_batch(m.config(), 1, 8, rng);
  in.type_ids[0] = static_cast<int>(m.config().type_vocab);
  EXPECT_THROW(infer.logits(in), std::out_of_range);
  in.type_ids[0] = -2;
  EXPECT_THROW(infer.logits(in), std::out_of_range);
}

TEST(EncodeValidation, OverlongSequenceThrows) {
  Rng rng(17);
  TaskModel m(tiny(), HeadKind::kClassify, 2, rng);
  ExactNonlinearities exact(m.config().act);
  InferenceModel infer(m, exact);

  BatchInput in = random_batch(m.config(), 1, m.config().max_seq + 1, rng);
  EXPECT_THROW(infer.logits(in), std::out_of_range);
}

TEST(EncodeValidation, ValidIdsStillWork) {
  Rng rng(18);
  TaskModel m(tiny(), HeadKind::kClassify, 2, rng);
  ExactNonlinearities exact(m.config().act);
  InferenceModel infer(m, exact);
  const BatchInput in = random_batch(m.config(), 2, 8, rng);
  const Tensor l = infer.logits(in);
  for (float v : l.flat()) EXPECT_TRUE(std::isfinite(v));
}

}  // namespace
}  // namespace nnlut::transformer
