#include <gtest/gtest.h>

#include <cmath>

#include "core/function_library.h"
#include "core/transform.h"

namespace nnlut {
namespace {

TEST(FunctionRegistry, LookupByNameAndAliases) {
  EXPECT_EQ(fn_spec_by_name("gelu")->id, TargetFn::kGelu);
  EXPECT_EQ(fn_spec_by_name("GELU")->id, TargetFn::kGelu);
  EXPECT_EQ(fn_spec_by_name("exp")->id, TargetFn::kExp);
  EXPECT_EQ(fn_spec_by_name("div")->id, TargetFn::kReciprocal);
  EXPECT_EQ(fn_spec_by_name("divide")->id, TargetFn::kReciprocal);
  EXPECT_EQ(fn_spec_by_name("reciprocal")->id, TargetFn::kReciprocal);
  EXPECT_EQ(fn_spec_by_name("1/sqrt")->id, TargetFn::kRsqrt);
  EXPECT_EQ(fn_spec_by_name("rsqrt")->id, TargetFn::kRsqrt);
  EXPECT_EQ(fn_spec_by_name("swish")->id, TargetFn::kSwish);
  EXPECT_EQ(fn_spec_by_name("hswish")->id, TargetFn::kHswish);
  EXPECT_EQ(fn_spec_by_name("tanh")->id, TargetFn::kTanh);
  EXPECT_EQ(fn_spec_by_name("sigmoid")->id, TargetFn::kSigmoid);
  EXPECT_EQ(fn_spec_by_name("nope"), nullptr);
}

TEST(FunctionRegistry, AllSpecsEnumerated) {
  EXPECT_EQ(all_fn_specs().size(), 8u);
  for (const FnSpec& s : all_fn_specs()) {
    EXPECT_LT(s.range.lo, s.range.hi) << s.name;
    EXPECT_NE(s.fn, nullptr) << s.name;
  }
}

TEST(FunctionRegistry, ExtendedFunctionValues) {
  const FnSpec* swish = fn_spec_by_name("swish");
  EXPECT_NEAR(swish->fn(0.0f), 0.0f, 1e-6f);
  EXPECT_NEAR(swish->fn(6.0f), 6.0f / (1.0f + std::exp(-6.0f)), 1e-5f);

  const FnSpec* hswish = fn_spec_by_name("hswish");
  EXPECT_EQ(hswish->fn(-4.0f), 0.0f);     // relu6(x+3) = 0
  EXPECT_NEAR(hswish->fn(4.0f), 4.0f, 1e-6f);  // relu6 saturates at 6
  EXPECT_NEAR(hswish->fn(0.0f), 0.0f, 1e-6f);

  const FnSpec* sigmoid = fn_spec_by_name("sigmoid");
  EXPECT_NEAR(sigmoid->fn(0.0f), 0.5f, 1e-6f);
}

// Every registered function must be approximable to small L1 with the
// default 16-entry recipe — the framework's universality claim (Fig. 3a).
class RegistryFit : public ::testing::TestWithParam<TargetFn> {};

TEST_P(RegistryFit, SixteenEntriesSuffice) {
  const TargetFn id = GetParam();
  const FnSpec& spec = fn_spec(id);
  const FittedLut fit = fit_lut(id, 16, FitPreset::kFast, 99);

  // Mean L1 over the training range, relative to the function's amplitude.
  double l1 = 0.0, amp = 0.0;
  const int n = 2048;
  for (int i = 0; i < n; ++i) {
    const float x = spec.range.lo + (spec.range.hi - spec.range.lo) *
                                        (static_cast<float>(i) + 0.5f) / n;
    l1 += std::abs(fit.lut(x) - spec.fn(x));
    amp = std::max(amp, std::abs(static_cast<double>(spec.fn(x))));
  }
  l1 /= n;
  EXPECT_LT(l1, 0.02 * std::max(amp, 1.0)) << spec.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllFunctions, RegistryFit,
    ::testing::Values(TargetFn::kGelu, TargetFn::kExp, TargetFn::kReciprocal,
                      TargetFn::kRsqrt, TargetFn::kSwish, TargetFn::kHswish,
                      TargetFn::kTanh, TargetFn::kSigmoid),
    [](const ::testing::TestParamInfo<TargetFn>& info) {
      std::string n = fn_spec(info.param).name;
      for (char& c : n)
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      return n;
    });

}  // namespace
}  // namespace nnlut
