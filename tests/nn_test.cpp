#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/attention.h"
#include "nn/layers.h"
#include "nn/losses.h"
#include "nn/optimizer.h"
#include "numerics/math.h"
#include "numerics/rng.h"
#include "tensor/ops.h"

namespace nnlut::nn {
namespace {

Tensor random_tensor(std::initializer_list<std::size_t> shape, Rng& rng,
                     float scale = 1.0f) {
  Tensor t(shape);
  for (float& v : t.flat()) v = rng.uniform(-scale, scale);
  return t;
}

/// Scalar objective: weighted sum of the module output (fixed weights make
/// the objective deterministic for finite differencing).
double weighted_sum(const Tensor& y, const Tensor& w) {
  double s = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i)
    s += static_cast<double>(y[i]) * w[i];
  return s;
}

/// Finite-difference gradient check on one parameter tensor.
/// forward() must recompute the module output from current parameter values.
void check_param_grad(Param& p, const std::function<Tensor()>& forward,
                      const Tensor& wout, const Tensor& analytic_grad,
                      int probes, Rng& rng, float tol) {
  for (int k = 0; k < probes; ++k) {
    const std::size_t i = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(p.value.size()) - 1));
    const float orig = p.value[i];
    const float eps = 1e-3f;
    p.value[i] = orig + eps;
    const double up = weighted_sum(forward(), wout);
    p.value[i] = orig - eps;
    const double dn = weighted_sum(forward(), wout);
    p.value[i] = orig;
    const double fd = (up - dn) / (2.0 * eps);
    const double an = analytic_grad[i];
    EXPECT_NEAR(an, fd, tol * std::max(1.0, std::abs(fd)))
        << "param index " << i;
  }
}

// -------------------------------------------------------------- Linear ----

TEST(Linear, ForwardMatchesManual) {
  Rng rng(1);
  Linear lin(3, 2, rng);
  lin.w.value.fill(0.5f);
  lin.b.value[0] = 1.0f;
  lin.b.value[1] = -1.0f;
  Tensor x({1, 3});
  x[0] = 1;
  x[1] = 2;
  x[2] = 3;
  const Tensor y = lin.forward(x);
  EXPECT_NEAR(y[0], 0.5f * 6 + 1.0f, 1e-6f);
  EXPECT_NEAR(y[1], 0.5f * 6 - 1.0f, 1e-6f);
}

TEST(Linear, GradientCheck) {
  Rng rng(2);
  Linear lin(5, 4, rng);
  const Tensor x = random_tensor({6, 5}, rng);
  const Tensor wout = random_tensor({6, 4}, rng);

  Tensor y = lin.forward(x);
  Tensor dy = wout;
  lin.w.zero_grad();
  lin.b.zero_grad();
  const Tensor dx = lin.backward(dy);

  auto fwd = [&] { return lin.forward(x); };
  check_param_grad(lin.w, fwd, wout, lin.w.grad, 10, rng, 1e-2f);
  check_param_grad(lin.b, fwd, wout, lin.b.grad, 4, rng, 1e-2f);

  // Input gradient via finite differences on one element.
  Tensor x2 = x;
  const float eps = 1e-3f;
  x2[7] += eps;
  const double up = weighted_sum(lin.forward(x2), wout);
  x2[7] -= 2 * eps;
  const double dn = weighted_sum(lin.forward(x2), wout);
  EXPECT_NEAR(dx[7], (up - dn) / (2 * eps), 1e-2);
}

// ----------------------------------------------------------- LayerNorm ----

TEST(LayerNormLayer, NormalizesRows) {
  Rng rng(3);
  LayerNorm ln(8);
  const Tensor x = random_tensor({4, 8}, rng, 3.0f);
  const Tensor y = ln.forward(x);
  for (std::size_t r = 0; r < 4; ++r) {
    double mean = 0, var = 0;
    for (float v : y.row(r)) mean += v;
    mean /= 8;
    for (float v : y.row(r)) var += (v - mean) * (v - mean);
    var /= 8;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(LayerNormLayer, GradientCheck) {
  Rng rng(4);
  LayerNorm ln(6);
  // Non-trivial gamma/beta.
  for (float& v : ln.gamma.value.flat()) v = rng.uniform(0.5f, 1.5f);
  for (float& v : ln.beta.value.flat()) v = rng.uniform(-0.5f, 0.5f);

  const Tensor x = random_tensor({3, 6}, rng, 2.0f);
  const Tensor wout = random_tensor({3, 6}, rng);

  ln.gamma.zero_grad();
  ln.beta.zero_grad();
  (void)ln.forward(x);
  const Tensor dx = ln.backward(wout);

  auto fwd = [&] { return ln.forward(x); };
  check_param_grad(ln.gamma, fwd, wout, ln.gamma.grad, 6, rng, 2e-2f);
  check_param_grad(ln.beta, fwd, wout, ln.beta.grad, 6, rng, 2e-2f);

  Tensor x2 = x;
  const float eps = 1e-3f;
  for (std::size_t i : {std::size_t{0}, std::size_t{9}, std::size_t{17}}) {
    x2[i] += eps;
    const double up = weighted_sum(ln.forward(x2), wout);
    x2[i] -= 2 * eps;
    const double dn = weighted_sum(ln.forward(x2), wout);
    x2[i] += eps;
    EXPECT_NEAR(dx[i], (up - dn) / (2 * eps), 2e-2) << i;
  }
}

// -------------------------------------------------------------- NoNorm ----

TEST(NoNormLayer, AffineOnly) {
  NoNorm nm(4);
  nm.gamma.value[2] = 3.0f;
  nm.beta.value[2] = 1.0f;
  Tensor x({1, 4});
  x[2] = 2.0f;
  const Tensor y = nm.forward(x);
  EXPECT_EQ(y[2], 7.0f);
  EXPECT_EQ(y[0], 0.0f);
}

TEST(NoNormLayer, GradientCheck) {
  Rng rng(5);
  NoNorm nm(5);
  for (float& v : nm.gamma.value.flat()) v = rng.uniform(0.5f, 1.5f);
  const Tensor x = random_tensor({3, 5}, rng);
  const Tensor wout = random_tensor({3, 5}, rng);

  nm.gamma.zero_grad();
  nm.beta.zero_grad();
  (void)nm.forward(x);
  const Tensor dx = nm.backward(wout);

  auto fwd = [&] { return nm.forward(x); };
  check_param_grad(nm.gamma, fwd, wout, nm.gamma.grad, 5, rng, 1e-2f);
  check_param_grad(nm.beta, fwd, wout, nm.beta.grad, 5, rng, 1e-2f);
  // dx = dy * gamma, exact:
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t j = 0; j < 5; ++j)
      EXPECT_NEAR(dx.at(r, j), wout.at(r, j) * nm.gamma.value[j], 1e-6f);
}

// ----------------------------------------------------------- Embedding ----

TEST(EmbeddingLayer, LookupAndScatter) {
  Rng rng(6);
  Embedding emb(10, 4, rng);
  const std::vector<int> ids{3, 7, 3};
  const Tensor y = emb.forward(ids);
  for (std::size_t j = 0; j < 4; ++j) {
    EXPECT_EQ(y.at(0, j), emb.table.value.at(3, j));
    EXPECT_EQ(y.at(2, j), emb.table.value.at(3, j));
  }

  Tensor dy({3, 4});
  dy.fill(1.0f);
  emb.table.zero_grad();
  emb.backward(dy);
  // Row 3 used twice -> gradient 2; row 7 once -> 1; others 0.
  EXPECT_EQ(emb.table.grad.at(3, 0), 2.0f);
  EXPECT_EQ(emb.table.grad.at(7, 0), 1.0f);
  EXPECT_EQ(emb.table.grad.at(0, 0), 0.0f);
}

// --------------------------------------------------------- Activations ----

TEST(Activations, GeluGradMatchesFiniteDifference) {
  for (float x : {-3.0f, -1.0f, -0.1f, 0.0f, 0.5f, 2.0f}) {
    const float eps = 1e-3f;
    const float fd = (gelu_exact(x + eps) - gelu_exact(x - eps)) / (2 * eps);
    EXPECT_NEAR(gelu_grad(x), fd, 1e-3f) << x;
  }
}

TEST(Activations, ReluBackwardMasks) {
  Rng rng(7);
  ReluAct relu;
  Tensor x({1, 4});
  x[0] = -1;
  x[1] = 2;
  x[2] = 0;
  x[3] = 3;
  (void)relu.forward(x);
  Tensor dy({1, 4});
  dy.fill(1.0f);
  const Tensor dx = relu.backward(dy);
  EXPECT_EQ(dx[0], 0.0f);
  EXPECT_EQ(dx[1], 1.0f);
  EXPECT_EQ(dx[2], 0.0f);
  EXPECT_EQ(dx[3], 1.0f);
}

// ----------------------------------------------------------- Attention ----

TEST(Attention, OutputShape) {
  Rng rng(8);
  MultiHeadAttention mha(8, 2, rng);
  const Tensor x = random_tensor({6, 8}, rng);  // batch=2, seq=3
  const Tensor y = mha.forward(x, 2, 3);
  EXPECT_EQ(y.dim(0), 6u);
  EXPECT_EQ(y.dim(1), 8u);
}

TEST(Attention, GradientCheck) {
  Rng rng(9);
  MultiHeadAttention mha(8, 2, rng);
  const Tensor x = random_tensor({4, 8}, rng);  // batch=2, seq=2
  const Tensor wout = random_tensor({4, 8}, rng);

  for (Param* p : mha.params()) p->zero_grad();
  (void)mha.forward(x, 2, 2);
  const Tensor dx = mha.backward(wout);

  auto fwd = [&] { return mha.forward(x, 2, 2); };
  check_param_grad(mha.wq.w, fwd, wout, mha.wq.w.grad, 6, rng, 3e-2f);
  check_param_grad(mha.wk.w, fwd, wout, mha.wk.w.grad, 6, rng, 3e-2f);
  check_param_grad(mha.wv.w, fwd, wout, mha.wv.w.grad, 6, rng, 3e-2f);
  check_param_grad(mha.wo.w, fwd, wout, mha.wo.w.grad, 6, rng, 3e-2f);

  // Input gradient probes.
  Tensor x2 = x;
  const float eps = 1e-3f;
  for (std::size_t i : {std::size_t{1}, std::size_t{13}, std::size_t{29}}) {
    x2[i] += eps;
    const double up = weighted_sum(mha.forward(x2, 2, 2), wout);
    x2[i] -= 2 * eps;
    const double dn = weighted_sum(mha.forward(x2, 2, 2), wout);
    x2[i] += eps;
    EXPECT_NEAR(dx[i], (up - dn) / (2 * eps), 3e-2) << i;
  }
}

// -------------------------------------------------------------- Losses ----

TEST(Losses, CrossEntropyUniformLogits) {
  Tensor logits({2, 4});  // all zeros -> uniform
  const std::vector<int> labels{1, 3};
  const LossResult r = cross_entropy(logits, labels);
  EXPECT_NEAR(r.loss, std::log(4.0), 1e-5);
  // Gradient: (softmax - onehot) / n.
  EXPECT_NEAR(r.dlogits.at(0, 1), (0.25f - 1.0f) / 2.0f, 1e-5f);
  EXPECT_NEAR(r.dlogits.at(0, 0), 0.25f / 2.0f, 1e-5f);
}

TEST(Losses, CrossEntropyIgnoresNegativeLabels) {
  Tensor logits({2, 3});
  const std::vector<int> labels{-1, 2};
  const LossResult r = cross_entropy(logits, labels);
  EXPECT_NEAR(r.loss, std::log(3.0), 1e-5);
  for (std::size_t j = 0; j < 3; ++j) EXPECT_EQ(r.dlogits.at(0, j), 0.0f);
}

TEST(Losses, CrossEntropyGradientCheck) {
  Rng rng(10);
  Tensor logits = random_tensor({3, 5}, rng);
  const std::vector<int> labels{0, 2, 4};
  const LossResult r = cross_entropy(logits, labels);
  const float eps = 1e-3f;
  for (std::size_t i : {std::size_t{0}, std::size_t{7}, std::size_t{14}}) {
    Tensor l2 = logits;
    l2[i] += eps;
    const double up = cross_entropy(l2, labels).loss;
    l2[i] -= 2 * eps;
    const double dn = cross_entropy(l2, labels).loss;
    EXPECT_NEAR(r.dlogits[i], (up - dn) / (2 * eps), 1e-3) << i;
  }
}

TEST(Losses, MseGradient) {
  Tensor logits({2, 1});
  logits[0] = 1.0f;
  logits[1] = -2.0f;
  const std::vector<float> targets{0.0f, 0.0f};
  const LossResult r = mse(logits, targets);
  EXPECT_NEAR(r.loss, 0.5 * (1.0 + 4.0) / 2.0, 1e-6);
  EXPECT_NEAR(r.dlogits[0], 0.5f, 1e-6f);
  EXPECT_NEAR(r.dlogits[1], -1.0f, 1e-6f);
}

TEST(Losses, ArgmaxRows) {
  Tensor logits({2, 3});
  logits.at(0, 2) = 5.0f;
  logits.at(1, 0) = 1.0f;
  const auto am = argmax_rows(logits);
  EXPECT_EQ(am[0], 2);
  EXPECT_EQ(am[1], 0);
}

// ---------------------------------------------------------------- Adam ----

TEST(AdamOptimizer, ConvergesOnLeastSquares) {
  // Fit y = 2x + 1 with a 1-D linear layer.
  Rng rng(11);
  Linear lin(1, 1, rng);
  Adam::Options opt;
  opt.lr = 0.05f;
  Adam adam(lin.params(), opt);

  for (int step = 0; step < 500; ++step) {
    Tensor x({8, 1});
    for (std::size_t i = 0; i < 8; ++i) x[i] = rng.uniform(-1.0f, 1.0f);
    const Tensor y = lin.forward(x);
    std::vector<float> targets(8);
    for (std::size_t i = 0; i < 8; ++i) targets[i] = 2.0f * x[i] + 1.0f;
    const LossResult r = mse(y, targets);
    adam.zero_grad();
    (void)lin.backward(r.dlogits);
    adam.step();
  }
  EXPECT_NEAR(lin.w.value[0], 2.0f, 0.05f);
  EXPECT_NEAR(lin.b.value[0], 1.0f, 0.05f);
}

TEST(AdamOptimizer, GradClipBoundsStep) {
  Rng rng(12);
  Linear lin(1, 1, rng);
  const float w0 = lin.w.value[0];
  Adam::Options opt;
  opt.lr = 0.1f;
  opt.grad_clip = 1e-6f;  // absurdly tight clip -> nearly frozen
  Adam adam(lin.params(), opt);
  lin.w.grad[0] = 1000.0f;
  adam.step();
  // Adam normalizes by sqrt(v), so the step magnitude is ~lr regardless;
  // the clip keeps the *direction* stable. Just check no explosion.
  EXPECT_NEAR(lin.w.value[0], w0, 0.2f);
}

}  // namespace
}  // namespace nnlut::nn
