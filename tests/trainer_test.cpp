#include <gtest/gtest.h>

#include <cmath>

#include "core/function_library.h"
#include "core/trainer.h"
#include "core/transform.h"
#include "numerics/math.h"
#include "numerics/rng.h"

namespace nnlut {
namespace {

TrainConfig quick_config(InputRange range, int hidden = 15) {
  TrainConfig cfg;
  cfg.hidden = hidden;
  cfg.range = range;
  cfg.dataset_size = 8000;
  cfg.epochs = 25;
  cfg.restarts = 2;
  cfg.seed = 11;
  return cfg;
}

TEST(Trainer, InitPlacesKinksInRange) {
  Rng rng(5);
  TrainConfig cfg = quick_config({-5.0f, 5.0f});
  const ApproxNet net = init_approx_net(cfg, rng, gelu_exact);
  ASSERT_EQ(net.hidden_size(), 15u);
  for (std::size_t i = 0; i < net.hidden_size(); ++i) {
    const float kink = -net.b[i] / net.n[i];
    EXPECT_GE(kink, cfg.range.lo - 1e-3f);
    EXPECT_LE(kink, cfg.range.hi + 1e-3f);
  }
}

TEST(Trainer, InitRespectsSignRecipes) {
  Rng rng(6);
  TrainConfig cfg = quick_config({-256.0f, 0.0f});
  cfg.weight_sign = SignInit::kPositive;
  cfg.bias_sign = SignInit::kPositive;
  const ApproxNet pos = init_approx_net(cfg, rng, exp_exact);
  for (std::size_t i = 0; i < pos.hidden_size(); ++i) {
    EXPECT_GT(pos.n[i], 0.0f);
    EXPECT_GE(pos.b[i], 0.0f);
  }

  cfg.range = {1.0f, 1024.0f};
  cfg.weight_sign = SignInit::kNegative;
  const ApproxNet neg = init_approx_net(cfg, rng, reciprocal_exact);
  for (std::size_t i = 0; i < neg.hidden_size(); ++i) {
    EXPECT_LT(neg.n[i], 0.0f);
    EXPECT_GE(neg.b[i], 0.0f);
  }
}

TEST(Trainer, InitRejectsBadArguments) {
  Rng rng(1);
  TrainConfig cfg = quick_config({0.0f, 1.0f});
  cfg.hidden = 0;
  EXPECT_THROW(init_approx_net(cfg, rng, gelu_exact), std::invalid_argument);
  cfg.hidden = 4;
  cfg.range = {2.0f, 1.0f};
  EXPECT_THROW(init_approx_net(cfg, rng, gelu_exact), std::invalid_argument);
}

TEST(Trainer, FitsGeluWell) {
  const TrainConfig cfg = quick_config(kGeluRange);
  const TrainResult r = fit_approx_net(gelu_exact, cfg);
  // 15 hidden neurons over (-5,5): mean L1 error must be small.
  EXPECT_LT(r.validation_l1, 0.02);
}

TEST(Trainer, FitsStraightLineNearlyExactly) {
  const auto line = [](float x) { return 2.0f * x + 1.0f; };
  TrainConfig cfg = quick_config({-2.0f, 2.0f}, 7);
  const TrainResult r = fit_approx_net(line, cfg);
  EXPECT_LT(r.validation_l1, 1e-2);
}

TEST(Trainer, RefitOutputLayerImprovesRandomOutputs) {
  Rng rng(17);
  TrainConfig cfg = quick_config(kGeluRange);
  ApproxNet net = init_approx_net(cfg, rng, gelu_exact);

  std::vector<float> xs(2000), ys(2000);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = rng.uniform(cfg.range.lo, cfg.range.hi);
    ys[i] = gelu_exact(xs[i]);
  }
  const double before = grid_l1_error(net, gelu_exact, cfg.range);
  ASSERT_TRUE(refit_output_layer(net, xs, ys));
  const double after = grid_l1_error(net, gelu_exact, cfg.range);
  EXPECT_LT(after, before);
  EXPECT_LT(after, 0.1);  // least squares with good kinks is already strong
}

TEST(Trainer, L2LossAlsoConverges) {
  TrainConfig cfg = quick_config(kGeluRange);
  cfg.loss = LossKind::kL2;
  const TrainResult r = fit_approx_net(gelu_exact, cfg);
  EXPECT_LT(r.validation_l1, 0.05);
}

TEST(Trainer, GridErrorOfPerfectNetIsZero) {
  ApproxNet net;  // exact identity on x > 0: relu(x)
  net.n = {1.0f};
  net.b = {0.0f};
  net.m = {1.0f};
  const auto relu = [](float x) { return x > 0 ? x : 0.0f; };
  EXPECT_NEAR(grid_l1_error(net, relu, {-1.0f, 1.0f}), 0.0, 1e-7);
}

TEST(FunctionLibrary, SpecsMatchTableOne) {
  EXPECT_EQ(fn_spec(TargetFn::kGelu).range.lo, -5.0f);
  EXPECT_EQ(fn_spec(TargetFn::kGelu).range.hi, 5.0f);
  EXPECT_EQ(fn_spec(TargetFn::kExp).range.lo, -256.0f);
  EXPECT_EQ(fn_spec(TargetFn::kExp).weight_sign, SignInit::kPositive);
  EXPECT_EQ(fn_spec(TargetFn::kReciprocal).range.hi, 1024.0f);
  EXPECT_EQ(fn_spec(TargetFn::kReciprocal).weight_sign, SignInit::kNegative);
  EXPECT_EQ(fn_spec(TargetFn::kRsqrt).range.lo, 0.1f);
  EXPECT_EQ(fn_spec(TargetFn::kRsqrt).bias_sign, SignInit::kPositive);
}

TEST(FunctionLibrary, RecipeHiddenSizeFollowsEntries) {
  EXPECT_EQ(recipe(TargetFn::kGelu, 16).hidden, 15);
  EXPECT_EQ(recipe(TargetFn::kGelu, 8).hidden, 7);
  EXPECT_THROW(recipe(TargetFn::kGelu, 1), std::invalid_argument);
}

TEST(FunctionLibrary, FitLutProducesUsableLut) {
  const FittedLut f = fit_lut(TargetFn::kGelu, 16, FitPreset::kFast, 3);
  EXPECT_GE(f.lut.entries(), 2u);
  EXPECT_LE(f.lut.entries(), 16u);
  // LUT must agree with its net (transform exactness, loose tolerance).
  for (float x = -5.0f; x <= 5.0f; x += 0.1f)
    EXPECT_NEAR(f.lut(x), f.net(x), 1e-4f);
  EXPECT_LT(f.validation_l1, 0.05);
}

}  // namespace
}  // namespace nnlut
