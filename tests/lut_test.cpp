#include <gtest/gtest.h>

#include <stdexcept>

#include "core/piecewise_linear.h"

namespace nnlut {
namespace {

PiecewiseLinear three_segment() {
  // y = -x for x < -1 ; y = 0 for -1 <= x < 1 ; y = x for x >= 1.
  return PiecewiseLinear({-1.0f, 1.0f}, {-1.0f, 0.0f, 1.0f},
                         {0.0f, 0.0f, 0.0f});
}

TEST(PiecewiseLinear, SegmentIndexing) {
  const PiecewiseLinear lut = three_segment();
  EXPECT_EQ(lut.segment_index(-5.0f), 0u);
  EXPECT_EQ(lut.segment_index(-1.0f), 1u);  // d_{i-1} <= x < d_i convention
  EXPECT_EQ(lut.segment_index(0.0f), 1u);
  EXPECT_EQ(lut.segment_index(1.0f), 2u);   // x >= d_{N-1} -> last segment
  EXPECT_EQ(lut.segment_index(9.0f), 2u);
}

TEST(PiecewiseLinear, Evaluation) {
  const PiecewiseLinear lut = three_segment();
  EXPECT_EQ(lut(-3.0f), 3.0f);
  EXPECT_EQ(lut(0.5f), 0.0f);
  EXPECT_EQ(lut(4.0f), 4.0f);
}

TEST(PiecewiseLinear, SingleSegmentIsALine) {
  const PiecewiseLinear lut({}, {2.0f}, {1.0f});
  EXPECT_EQ(lut.entries(), 1u);
  EXPECT_EQ(lut(-10.0f), -19.0f);
  EXPECT_EQ(lut(10.0f), 21.0f);
}

TEST(PiecewiseLinear, EvalInplaceBatch) {
  const PiecewiseLinear lut = three_segment();
  std::vector<float> xs{-2.0f, 0.0f, 2.0f};
  lut.eval_inplace(xs);
  EXPECT_EQ(xs[0], 2.0f);
  EXPECT_EQ(xs[1], 0.0f);
  EXPECT_EQ(xs[2], 2.0f);
}

TEST(PiecewiseLinear, SixteenEntryLayout) {
  // The paper's deployment size: 16 entries = 15 breakpoints.
  std::vector<float> bps(15), slopes(16, 1.0f), intercepts(16, 0.0f);
  for (int i = 0; i < 15; ++i) bps[static_cast<std::size_t>(i)] = static_cast<float>(i);
  const PiecewiseLinear lut(bps, slopes, intercepts);
  EXPECT_EQ(lut.entries(), 16u);
  EXPECT_EQ(lut.segment_index(-0.5f), 0u);
  EXPECT_EQ(lut.segment_index(14.5f), 15u);
}

TEST(PiecewiseLinear, RejectsEmptyTable) {
  EXPECT_THROW(PiecewiseLinear({}, {}, {}), std::invalid_argument);
}

TEST(PiecewiseLinear, RejectsSizeMismatch) {
  EXPECT_THROW(PiecewiseLinear({0.0f}, {1.0f}, {0.0f}), std::invalid_argument);
  EXPECT_THROW(PiecewiseLinear({0.0f}, {1.0f, 2.0f}, {0.0f}),
               std::invalid_argument);
}

TEST(PiecewiseLinear, RejectsUnsortedBreakpoints) {
  EXPECT_THROW(PiecewiseLinear({1.0f, 0.0f}, {1, 1, 1}, {0, 0, 0}),
               std::invalid_argument);
}

TEST(PiecewiseLinear, RejectsDuplicateBreakpoints) {
  EXPECT_THROW(PiecewiseLinear({1.0f, 1.0f}, {1, 1, 1}, {0, 0, 0}),
               std::invalid_argument);
}

TEST(PiecewiseLinear, RejectsNonFiniteBreakpoint) {
  EXPECT_THROW(
      PiecewiseLinear({std::numeric_limits<float>::quiet_NaN()}, {1, 1}, {0, 0}),
      std::invalid_argument);
  EXPECT_THROW(
      PiecewiseLinear({std::numeric_limits<float>::infinity()}, {1, 1}, {0, 0}),
      std::invalid_argument);
}

// Property sweep: lookups over many positions agree with a linear scan.
class LutIndexProperty : public ::testing::TestWithParam<int> {};

TEST_P(LutIndexProperty, BinarySearchMatchesLinearScan) {
  const int entries = GetParam();
  std::vector<float> bps, slopes, intercepts;
  for (int i = 1; i < entries; ++i)
    bps.push_back(static_cast<float>(i) * 0.37f - 2.0f);
  slopes.assign(static_cast<std::size_t>(entries), 1.0f);
  intercepts.assign(static_cast<std::size_t>(entries), 0.0f);
  const PiecewiseLinear lut(bps, slopes, intercepts);

  for (float x = -5.0f; x <= 5.0f; x += 0.01f) {
    std::size_t linear = 0;
    while (linear < bps.size() && x >= bps[linear]) ++linear;
    EXPECT_EQ(lut.segment_index(x), linear) << "x=" << x;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, LutIndexProperty,
                         ::testing::Values(2, 3, 8, 16, 33));

}  // namespace
}  // namespace nnlut
