// Kernel-parity suite: batched SoA-plan evaluation must be bit-identical to
// per-element scalar evaluation for random LUTs at all three precisions,
// including inputs exactly on breakpoints, +/-inf, NaN, and empty/1-element
// spans. The FP16/INT32 references below replicate the original per-element
// comparator-walk implementations independently of the kernel code so the
// test is not self-referential.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <limits>
#include <optional>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/lut_kernel.h"
#include "core/lut_kernel_simd.h"
#include "core/lut_kernel_simd_detail.h"
#include "core/piecewise_linear.h"
#include "core/quantized_lut.h"
#include "core/scalar_fn.h"
#include "numerics/half.h"
#include "numerics/rng.h"
#include "runtime/thread_pool.h"

namespace nnlut {
namespace {

using simd::SimdTier;

constexpr float kInf = std::numeric_limits<float>::infinity();
constexpr float kNan = std::numeric_limits<float>::quiet_NaN();

PiecewiseLinear random_lut(int entries, Rng& rng) {
  std::vector<float> bps, slopes, intercepts;
  float d = rng.uniform(-8.0f, -4.0f);
  for (int i = 1; i < entries; ++i) {
    d += rng.uniform(0.05f, 1.5f);
    bps.push_back(d);
  }
  for (int i = 0; i < entries; ++i) {
    slopes.push_back(rng.uniform(-3.0f, 3.0f));
    intercepts.push_back(rng.uniform(-2.0f, 2.0f));
  }
  return PiecewiseLinear(bps, slopes, intercepts);
}

/// Inputs hitting every segment, every breakpoint exactly, the values just
/// around each breakpoint, and the non-finite edge cases.
std::vector<float> parity_inputs(const PiecewiseLinear& lut, Rng& rng) {
  std::vector<float> xs;
  for (int i = 0; i < 400; ++i) xs.push_back(rng.uniform(-20.0f, 20.0f));
  for (float b : lut.breakpoints()) {
    xs.push_back(b);
    xs.push_back(std::nextafter(b, -kInf));
    xs.push_back(std::nextafter(b, kInf));
  }
  xs.push_back(0.0f);
  xs.push_back(-0.0f);
  xs.push_back(std::numeric_limits<float>::denorm_min());
  xs.push_back(kInf);
  xs.push_back(-kInf);
  xs.push_back(kNan);
  // binary16 edges (exercised by the FP16 plans, harmless elsewhere):
  // smallest/largest half denormal, smallest half normal, largest finite
  // half, the first float that rounds to half +inf, and NaN payload
  // variants including a signaling pattern.
  xs.push_back(5.9604645e-8f);
  xs.push_back(6.0975552e-5f);
  xs.push_back(6.1035156e-5f);
  xs.push_back(65504.0f);
  xs.push_back(-65504.0f);
  xs.push_back(65520.0f);
  xs.push_back(std::bit_cast<float>(0x7fc12345u));
  xs.push_back(std::bit_cast<float>(0xffc54321u));
  xs.push_back(std::bit_cast<float>(0x7f800001u));
  return xs;
}

/// Bit-identity, treating any-NaN == any-NaN (NaN payload bits are the one
/// thing IEEE lets differ between otherwise identical op sequences).
void expect_bitwise(float a, float b, float x) {
  if (std::isnan(a) && std::isnan(b)) return;
  EXPECT_EQ(std::bit_cast<std::uint32_t>(a), std::bit_cast<std::uint32_t>(b))
      << "x=" << x << " scalar=" << a << " batched=" << b;
}

/// The seed's per-element FP16 evaluation: comparator walk over half-rounded
/// breakpoints, MAC in binary16 arithmetic.
float fp16_reference(const PiecewiseLinear& lut, float x) {
  const Half hx(x);
  const auto bps = lut.breakpoints();
  std::size_t i = 0;
  while (i < bps.size() && !(hx.to_float() < round_to_half(bps[i]))) ++i;
  const Half s(round_to_half(lut.slopes()[i]));
  const Half t(round_to_half(lut.intercepts()[i]));
  return ((s * hx) + t).to_float();
}

std::int32_t ref_quantize(float v, float scale) {
  const float q = std::round(v / scale);
  if (std::isnan(q)) return 0;
  const float lim = 2.147e9f;
  return static_cast<std::int32_t>(std::clamp(q, -lim, lim));
}

/// The seed's per-element INT32 evaluation, re-deriving the scales the same
/// way the kernel does.
float int32_reference(const PiecewiseLinear& lut, float input_max_abs,
                      float x) {
  constexpr float kQMax = 32767.0f;
  const float sx = input_max_abs / kQMax;
  float max_slope = 0.0f;
  for (float s : lut.slopes()) max_slope = std::max(max_slope, std::abs(s));
  const float ss = (max_slope > 0.0f ? max_slope : 1.0f) / kQMax;

  const std::int32_t qx = ref_quantize(x, sx);
  const auto bps = lut.breakpoints();
  std::size_t i = 0;
  while (i < bps.size() && qx >= ref_quantize(bps[i], sx)) ++i;
  const std::int64_t acc =
      static_cast<std::int64_t>(ref_quantize(lut.slopes()[i], ss)) * qx +
      static_cast<std::int64_t>(ref_quantize(lut.intercepts()[i], ss * sx));
  return static_cast<float>(acc) * (ss * sx);
}

class KernelParity : public ::testing::TestWithParam<int> {};

TEST_P(KernelParity, Fp32BatchedMatchesScalarBitwise) {
  Rng rng(17u + static_cast<std::uint64_t>(GetParam()));
  const PiecewiseLinear lut = random_lut(GetParam(), rng);
  const std::vector<float> xs = parity_inputs(lut, rng);

  std::vector<float> batched = xs;
  lut.eval_inplace(batched);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    // Reference: the per-element binary-search path.
    expect_bitwise(lut(xs[i]), batched[i], xs[i]);
    // The plan's own scalar entry point must agree too.
    expect_bitwise(lut.kernel().eval_scalar(xs[i]), batched[i], xs[i]);
  }
}

TEST_P(KernelParity, Fp16BatchedMatchesScalarBitwise) {
  Rng rng(23u + static_cast<std::uint64_t>(GetParam()));
  const PiecewiseLinear lut = random_lut(GetParam(), rng);
  const LutFp16 fn(lut);
  const std::vector<float> xs = parity_inputs(lut, rng);

  std::vector<float> batched = xs;
  fn.eval_inplace(batched);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    expect_bitwise(fp16_reference(lut, xs[i]), batched[i], xs[i]);
    expect_bitwise(fn.eval(xs[i]), batched[i], xs[i]);
  }
}

TEST_P(KernelParity, Int32BatchedMatchesScalarBitwise) {
  Rng rng(31u + static_cast<std::uint64_t>(GetParam()));
  const PiecewiseLinear lut = random_lut(GetParam(), rng);
  const float input_max_abs = 24.0f;
  const LutInt32 fn(lut, input_max_abs);
  const std::vector<float> xs = parity_inputs(lut, rng);

  std::vector<float> batched = xs;
  fn.eval_inplace(batched);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    expect_bitwise(int32_reference(lut, input_max_abs, xs[i]), batched[i],
                   xs[i]);
    expect_bitwise(fn.eval(xs[i]), batched[i], xs[i]);
  }
}

// Entry counts straddling both plan shapes: comparator-bank linear scan
// (padded <= 32) and branchless bisection (padded > 32), plus non-powers of
// two that exercise the padding.
INSTANTIATE_TEST_SUITE_P(Entries, KernelParity,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 31, 32, 33, 64,
                                           100, 128, 300));

TEST(LutKernel, EmptySpanIsANoOp) {
  Rng rng(7);
  const PiecewiseLinear lut = random_lut(16, rng);
  std::vector<float> empty;
  lut.eval_inplace(empty);  // must not crash
  LutFp16 h(lut);
  LutInt32 q(lut, 24.0f);
  h.eval_inplace(std::span<float>{});
  q.eval_inplace(std::span<float>{});
  EXPECT_TRUE(empty.empty());
}

TEST(LutKernel, OneElementSpanMatchesScalar) {
  Rng rng(9);
  const PiecewiseLinear lut = random_lut(16, rng);
  for (float x : {-7.5f, 0.0f, 3.25f, kInf, -kInf}) {
    float v = x;
    std::span<float> one(&v, 1);
    lut.eval_inplace(one);
    expect_bitwise(lut(x), v, x);
  }
}

TEST(LutKernel, PaddingReplicatesLastSegment) {
  // 3 entries pad to 4; anything past the last real breakpoint (including
  // +inf and NaN's padded-tail index) must land on the last real segment.
  const PiecewiseLinear lut({-1.0f, 1.0f}, {2.0f, 0.5f, -3.0f},
                            {0.0f, 1.0f, 2.0f});
  EXPECT_EQ(lut.kernel().padded_entries(), 4u);
  std::vector<float> xs{5.0f, 100.0f, kInf};
  std::vector<float> batched = xs;
  lut.eval_inplace(batched);
  for (std::size_t i = 0; i < xs.size(); ++i)
    expect_bitwise(lut(xs[i]), batched[i], xs[i]);
}

TEST(LutKernel, PlanShapeSelection) {
  Rng rng(11);
  EXPECT_TRUE(random_lut(16, rng).kernel().linear_scan());
  EXPECT_TRUE(random_lut(32, rng).kernel().linear_scan());
  EXPECT_FALSE(random_lut(33, rng).kernel().linear_scan());
  EXPECT_FALSE(random_lut(128, rng).kernel().linear_scan());
}

TEST(CapturingFn, RecordsBatchedInputsAndDelegatesBatched) {
  Rng rng(13);
  const PiecewiseLinear lut = random_lut(16, rng);
  const LutFp32 base(lut);
  std::vector<float> sink;
  const CapturingFn cap(base, sink);

  std::vector<float> xs{-3.0f, -0.5f, 0.0f, 1.25f, 9.0f};
  std::vector<float> got = xs;
  cap.eval_inplace(got);

  ASSERT_EQ(sink.size(), xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_EQ(sink[i], xs[i]) << i;  // inputs recorded, in order
    expect_bitwise(lut(xs[i]), got[i], xs[i]);  // base's batched path ran
  }

  // Scalar convenience routes through the batched primitive: captured once.
  sink.clear();
  EXPECT_EQ(cap.eval(2.5f), base.eval(2.5f));
  ASSERT_EQ(sink.size(), 1u);
  EXPECT_EQ(sink[0], 2.5f);
}

// ------------------------------------------------- SIMD tier dispatch ------

/// Pins a tier for a scope; restores automatic selection on exit.
class ScopedTier {
 public:
  explicit ScopedTier(SimdTier t) { simd::set_simd_tier(t); }
  ~ScopedTier() { simd::set_simd_tier(std::nullopt); }
};

TEST(SimdDispatch, TierNamesRoundTrip) {
  for (SimdTier t : {SimdTier::kScalar, SimdTier::kAvx2, SimdTier::kAvx512,
                     SimdTier::kAvx512Vnni})
    EXPECT_EQ(simd::parse_simd_tier(simd::simd_tier_name(t)), t);
  EXPECT_EQ(simd::parse_simd_tier("neon"), std::nullopt);
  EXPECT_EQ(simd::parse_simd_tier(""), std::nullopt);
}

TEST(SimdDispatch, DetectionReport) {
  // Assertion-light on purpose: prints this machine's detection result so
  // CI logs record which tiers the parity suites actually exercised.
  std::printf("detected=%s auto=%s available=[%s] f16c=%d avx512vnni=%d\n",
              simd::simd_tier_name(simd::detected_simd_tier()),
              simd::simd_tier_name(simd::auto_simd_tier()),
              simd::simd_tier_names().c_str(), simd::has_f16c() ? 1 : 0,
              simd::has_avx512vnni() ? 1 : 0);
  // The available list is a chain from scalar up to exactly the detection.
  EXPECT_FALSE(simd::simd_tier_names().empty());
  EXPECT_EQ(simd::available_simd_tiers().front(), SimdTier::kScalar);
  EXPECT_EQ(simd::available_simd_tiers().back(), simd::detected_simd_tier());
}

TEST(SimdDispatch, EnvironmentPolicyOnlyLowersTheTier) {
  const SimdTier det = SimdTier::kAvx512;
  // NNLUT_FORCE_SCALAR wins over everything except "off" spellings.
  EXPECT_EQ(simd::env_capped_tier("1", nullptr, det), SimdTier::kScalar);
  EXPECT_EQ(simd::env_capped_tier("yes", "avx512", det), SimdTier::kScalar);
  EXPECT_EQ(simd::env_capped_tier("0", nullptr, det), det);
  EXPECT_EQ(simd::env_capped_tier("", nullptr, det), det);
  // NNLUT_SIMD_TIER caps at the named tier, clamped to detection.
  EXPECT_EQ(simd::env_capped_tier(nullptr, "avx2", det), SimdTier::kAvx2);
  EXPECT_EQ(simd::env_capped_tier(nullptr, "scalar", det), SimdTier::kScalar);
  EXPECT_EQ(simd::env_capped_tier(nullptr, "avx512", SimdTier::kAvx2),
            SimdTier::kAvx2);  // clamp: never above the CPU
  EXPECT_EQ(simd::env_capped_tier(nullptr, "bogus", det), det);
  EXPECT_EQ(simd::env_capped_tier(nullptr, nullptr, det), det);
}

TEST(SimdDispatch, ForcingAnUnsupportedTierThrowsAndKeepsState) {
  const SimdTier before = simd::active_simd_tier();
  const SimdTier det = simd::detected_simd_tier();
  if (det < SimdTier::kAvx512) {
    EXPECT_THROW(simd::set_simd_tier(SimdTier::kAvx512),
                 std::invalid_argument);
    if (det < SimdTier::kAvx2) {
      EXPECT_THROW(simd::set_simd_tier(SimdTier::kAvx2),
                   std::invalid_argument);
    }
    EXPECT_EQ(simd::active_simd_tier(), before);
  }
  // Scalar is always forcible; nullopt restores the automatic choice.
  simd::set_simd_tier(SimdTier::kScalar);
  EXPECT_EQ(simd::active_simd_tier(), SimdTier::kScalar);
  simd::set_simd_tier(std::nullopt);
  EXPECT_EQ(simd::active_simd_tier(), simd::auto_simd_tier());
}

TEST(SimdDispatch, RuntimeConfigPinsAndRestoresTheTier) {
  runtime::set_runtime_config({1, SimdTier::kScalar});
  EXPECT_EQ(simd::active_simd_tier(), SimdTier::kScalar);
  EXPECT_EQ(runtime::runtime_config().simd, SimdTier::kScalar);
  runtime::set_runtime_config({});
  EXPECT_EQ(simd::active_simd_tier(), simd::auto_simd_tier());
  EXPECT_EQ(runtime::runtime_config().simd, std::nullopt);
}

/// Forced-tier parity: for every available tier, every precision, entry
/// counts straddling the permute / gather / bisection kernel shapes, inputs
/// including exact breakpoints, ±inf and NaN — bits must equal the forced-
/// scalar reference. This is the ISA-invariance contract.
class SimdTierParity : public ::testing::TestWithParam<int> {};

TEST_P(SimdTierParity, AllTiersMatchScalarBitwise) {
  Rng rng(211u + static_cast<std::uint64_t>(GetParam()));
  const PiecewiseLinear lut = random_lut(GetParam(), rng);
  const LutFp16 half_fn(lut);
  const LutInt32 int_fn(lut, 24.0f);
  const std::vector<float> xs = parity_inputs(lut, rng);

  struct Precision {
    const char* name;
    std::function<void(std::span<float>)> eval;
  };
  const Precision precisions[] = {
      {"fp32", [&](std::span<float> b) { lut.eval_inplace(b); }},
      {"fp16", [&](std::span<float> b) { half_fn.eval_inplace(b); }},
      {"int32", [&](std::span<float> b) { int_fn.eval_inplace(b); }},
  };

  for (const Precision& prec : precisions) {
    std::vector<float> ref = xs;
    {
      ScopedTier scalar(SimdTier::kScalar);
      prec.eval(ref);
    }
    for (SimdTier tier : simd::available_simd_tiers()) {
      ScopedTier forced(tier);
      std::vector<float> got = xs;
      prec.eval(got);
      for (std::size_t i = 0; i < xs.size(); ++i)
        expect_bitwise(ref[i], got[i], xs[i]);
      ASSERT_FALSE(::testing::Test::HasFailure())
          << prec.name << " under " << simd::simd_tier_name(tier)
          << " (entries=" << GetParam() << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Entries, SimdTierParity,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 31, 32, 33, 64,
                                           100, 128, 300));

TEST(SimdTierParity, UnalignedAndShortSpansMatchScalar) {
  // Sub-vector spans, every misalignment of a 64-byte line, and lengths
  // around the 8/16-lane vector widths: the wide kernels must agree with
  // scalar on their tail handling and unaligned loads, at all three
  // precisions (the FP16 span rides at offset + 32 so the three evals never
  // need the buffer grown per precision).
  Rng rng(99);
  const PiecewiseLinear lut = random_lut(16, rng);
  const LutFp16 half_fn(lut);
  const LutInt32 int_fn(lut, 24.0f);
  std::vector<float> base(128);
  for (float& x : base) x = rng.uniform(-20.0f, 20.0f);
  base[40] = std::numeric_limits<float>::quiet_NaN();
  base[41] = kInf;
  base[42] = 65520.0f;        // rounds to +inf in binary16
  base[43] = 5.9604645e-8f;   // half denormal min

  for (std::size_t offset : {0u, 1u, 3u, 5u, 7u, 9u}) {
    for (std::size_t len : {1u, 2u, 7u, 8u, 9u, 15u, 16u, 17u, 33u, 64u}) {
      for (SimdTier tier : simd::available_simd_tiers()) {
        std::vector<float> ref = base;
        std::vector<float> got = base;
        {
          ScopedTier scalar(SimdTier::kScalar);
          lut.eval_inplace(std::span<float>(ref).subspan(offset, len));
          int_fn.eval_inplace(
              std::span<float>(ref).subspan(offset + 16, len));
          half_fn.eval_inplace(
              std::span<float>(ref).subspan(offset + 32, len));
        }
        {
          ScopedTier forced(tier);
          lut.eval_inplace(std::span<float>(got).subspan(offset, len));
          int_fn.eval_inplace(
              std::span<float>(got).subspan(offset + 16, len));
          half_fn.eval_inplace(
              std::span<float>(got).subspan(offset + 32, len));
        }
        for (std::size_t i = 0; i < base.size(); ++i)
          expect_bitwise(ref[i], got[i], base[i]);
        ASSERT_FALSE(::testing::Test::HasFailure())
            << "tier=" << simd::simd_tier_name(tier) << " offset=" << offset
            << " len=" << len;
      }
    }
  }
}

TEST(SimdTierParity, Fp16NaNPayloadBitsExactAcrossTiers) {
  // Payload-strict variant of the FP16 parity check: raw output bits, no
  // NaN-equals-NaN tolerance. The software rounding chain (numerics/half.h)
  // and the F16C / AVX-512 vcvtps2ph round-trips must narrow, quiet and
  // widen NaN payloads identically, so even NaN outputs are bit-equal.
  Rng rng(131);
  for (int entries : {8, 64}) {
    const PiecewiseLinear lut = random_lut(entries, rng);
    const LutFp16 fn(lut);
    std::vector<float> xs;
    for (std::uint32_t bits : {0x7fc00000u, 0x7fc12345u, 0xffc54321u,
                               0x7f800001u, 0xff923456u, 0x7fffffffu})
      xs.push_back(std::bit_cast<float>(bits));
    for (int i = 0; i < 32; ++i) xs.push_back(rng.uniform(-20.0f, 20.0f));
    std::vector<float> ref = xs;
    {
      ScopedTier scalar(SimdTier::kScalar);
      fn.eval_inplace(ref);
    }
    for (SimdTier tier : simd::available_simd_tiers()) {
      ScopedTier forced(tier);
      std::vector<float> got = xs;
      fn.eval_inplace(got);
      for (std::size_t i = 0; i < xs.size(); ++i)
        EXPECT_EQ(std::bit_cast<std::uint32_t>(ref[i]),
                  std::bit_cast<std::uint32_t>(got[i]))
            << "tier=" << simd::simd_tier_name(tier)
            << " entries=" << entries << " i=" << i;
    }
  }
}

TEST(SimdTierParity, Int32MacInt16PairBoundarySweep) {
  // The avx512vnni tier's vpdpwssd MAC is exact only under the int16-pair
  // contract, enforced at two levels: a per-table precheck
  // (detail::int32_mac_fits_int16_pairs) and a per-vector guard on the
  // quantized inputs. Sweep both sides of every boundary and require
  // bitwise equality with forced scalar on every available tier — on VNNI
  // machines this drives the fast path, the per-vector fallback and the
  // whole-table fallback; elsewhere it still pins the int64 MAC on these
  // extremes.
  const float input_max_abs = 24.0f;
  const float sx = input_max_abs / 32767.0f;

  // Table A: the max-magnitude slope quantizes to ±32767 and intercepts
  // are small, so |q_s|·2^15 + |q_t| stays within INT32_MAX.
  const PiecewiseLinear small_t({-4.0f, 0.0f, 4.0f},
                                {1.0f, -0.25f, 0.5f, -1.0f},
                                {0.5f, -0.5f, 0.25f, 1.5f});
  // Table B: intercept 50000 on the tiny product scale Ss·Sx clamps q_t at
  // ~2.147e9, blowing the int32 accumulator budget.
  const PiecewiseLinear big_t({-4.0f, 0.0f, 4.0f},
                              {1.0f, -0.25f, 0.5f, -1.0f},
                              {0.5f, 50000.0f, 0.25f, 1.5f});
  const LutInt32 fits(small_t, input_max_abs);
  const LutInt32 spills(big_t, input_max_abs);
  EXPECT_TRUE(simd::detail::int32_mac_fits_int16_pairs(
      fits.kernel().padded_slopes().data(),
      fits.kernel().padded_intercepts().data(),
      fits.kernel().padded_entries()));
  EXPECT_FALSE(simd::detail::int32_mac_fits_int16_pairs(
      spills.kernel().padded_slopes().data(),
      spills.kernel().padded_intercepts().data(),
      spills.kernel().padded_entries()));

  // Inputs straddling the q_x int16 boundary: q = ±32768…±32766 are the
  // extremes a legal input can quantize to; |x| > input_max_abs quantizes
  // past the int16 range and must trip the per-vector guard lane-wise.
  std::vector<float> edges;
  for (std::int32_t q : {-32768, -32767, -32766, -1, 0, 1, 32766, 32767})
    edges.push_back(static_cast<float>(q) * sx);
  for (float wide : {-40.0f, 25.0f, 40.0f, 1000.0f}) edges.push_back(wide);
  std::vector<float> mixed;  // some 16-lane vectors trip the guard
  for (int rep = 0; rep < 6; ++rep)
    for (float x : edges) mixed.push_back(x);
  std::vector<float> inrange(48);  // no lane trips the guard
  for (std::size_t i = 0; i < inrange.size(); ++i)
    inrange[i] = static_cast<float>(static_cast<int>(i) * 683 - 16384) * sx;

  for (const LutInt32* fn : {&fits, &spills}) {
    for (const std::vector<float>* batch : {&mixed, &inrange}) {
      std::vector<float> ref = *batch;
      {
        ScopedTier scalar(SimdTier::kScalar);
        fn->eval_inplace(ref);
      }
      for (SimdTier tier : simd::available_simd_tiers()) {
        ScopedTier forced(tier);
        std::vector<float> got = *batch;
        fn->eval_inplace(got);
        for (std::size_t i = 0; i < batch->size(); ++i)
          expect_bitwise(ref[i], got[i], (*batch)[i]);
        ASSERT_FALSE(::testing::Test::HasFailure())
            << "tier=" << simd::simd_tier_name(tier)
            << (fn == &fits ? " table=fits" : " table=spills");
      }
    }
  }
}

// -------------------------------------------------------- plan cache ------

TEST(PlanCache, IdenticalTablesShareOnePlan) {
  const std::vector<float> bps = {-1.0f, 0.0f, 1.0f};
  const std::vector<float> slopes = {0.5f, 1.0f, -1.0f, 2.0f};
  const std::vector<float> intercepts = {0.0f, 0.25f, -0.25f, 1.0f};

  const PlanCacheStats before = plan_cache_stats();
  PiecewiseLinear a(bps, slopes, intercepts);
  PiecewiseLinear b(bps, slopes, intercepts);  // calibrated twin site
  const PlanCacheStats after = plan_cache_stats();

  EXPECT_EQ(&a.kernel(), &b.kernel());  // one shared compiled plan
  EXPECT_EQ(after.misses - before.misses, 1u);
  EXPECT_EQ(after.hits - before.hits, 1u);

  // Copies share the plan without touching the cache.
  PiecewiseLinear c = a;
  EXPECT_EQ(&c.kernel(), &a.kernel());
  EXPECT_EQ(plan_cache_stats().hits, after.hits);
}

TEST(PlanCache, DifferentTablesGetDifferentPlans) {
  Rng rng(77);
  PiecewiseLinear a = random_lut(8, rng);
  PiecewiseLinear b = random_lut(8, rng);
  EXPECT_NE(&a.kernel(), &b.kernel());
}

TEST(PlanCache, NearMissContentIsNotShared) {
  // Same breakpoints/slopes, one intercept differs in the last bit pattern:
  // -0.0 vs 0.0 must compile separate plans (cache equality is bitwise).
  const std::vector<float> bps = {0.0f};
  const std::vector<float> slopes = {1.0f, 2.0f};
  PiecewiseLinear a(bps, slopes, {0.0f, 1.0f});
  PiecewiseLinear b(bps, slopes, {-0.0f, 1.0f});
  EXPECT_NE(&a.kernel(), &b.kernel());
}

TEST(PlanCache, PlansExpireWithTheirTables) {
  const std::vector<float> bps = {-2.0f, 2.0f};
  const std::vector<float> slopes = {1.0f, 0.0f, -1.0f};
  const std::vector<float> intercepts = {0.0f, 3.25f, -1.5f};
  std::size_t live_inside = 0;
  {
    PiecewiseLinear a(bps, slopes, intercepts);
    live_inside = plan_cache_stats().live;
    EXPECT_GE(live_inside, 1u);
  }
  // The weak reference expired with `a`; the plan no longer counts as live.
  EXPECT_EQ(plan_cache_stats().live, live_inside - 1);
}

TEST(PlanCache, ExpiredEntriesAreSweptPeriodically) {
  const PlanCacheStats before = plan_cache_stats();
  for (int i = 0; i < 300; ++i) {
    // Distinct one-off tables, destroyed immediately — the fitting-sweep
    // pattern. Without periodic sweeping each would leak a cache entry.
    PiecewiseLinear tmp(std::vector<float>{},
                        std::vector<float>{static_cast<float>(i) + 0.5f},
                        std::vector<float>{static_cast<float>(i)});
  }
  const PlanCacheStats after = plan_cache_stats();
  EXPECT_GE(after.misses - before.misses, 300u);
  // Held entries stay bounded by live plans + one sweep period, far below
  // the 300 tables ever compiled.
  EXPECT_LE(after.cached, before.cached + 96);
}

TEST(PlanCache, SharedPlanEvaluatesIdentically) {
  Rng rng(78);
  PiecewiseLinear a = random_lut(16, rng);
  PiecewiseLinear b(std::vector<float>(a.breakpoints().begin(),
                                       a.breakpoints().end()),
                    std::vector<float>(a.slopes().begin(), a.slopes().end()),
                    std::vector<float>(a.intercepts().begin(),
                                       a.intercepts().end()));
  ASSERT_EQ(&a.kernel(), &b.kernel());
  std::vector<float> xs = {-9.0f, -1.0f, 0.0f, 2.5f, 100.0f, kInf, -kInf, kNan};
  std::vector<float> ys = xs;
  a.eval_inplace(xs);
  b.eval_inplace(ys);
  for (std::size_t i = 0; i < xs.size(); ++i)
    expect_bitwise(xs[i], ys[i], 0.0f);
}

}  // namespace
}  // namespace nnlut
